#ifndef HBTREE_HYBRID_BUCKET_PIPELINE_H_
#define HBTREE_HYBRID_BUCKET_PIPELINE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "gpusim/cost_model.h"
#include "gpusim/device.h"
#include "hybrid/hb_fast.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"
#include "obs/heat.h"
#include "obs/trace.h"
#include "sim/resource.h"

namespace hbtree {

/// Bucket handling strategies evaluated in Figure 10 (Section 5.4).
enum class BucketStrategy {
  /// Load and resolve each bucket strictly in sequence (baseline).
  kSequential,
  /// CPU-GPU pipelining (Figure 5): CPU leaf search overlaps the next
  /// bucket's GPU work, but the GPU-side steps (transfer in, kernel,
  /// transfer out) of consecutive buckets share one engine.
  kPipelined,
  /// Pipelining with double buffering (Figure 6): two buffer sets let
  /// transfers overlap kernel execution on separate engines.
  kDoubleBuffered,
};

const char* BucketStrategyName(BucketStrategy s);

/// Execution parameters for the heterogeneous search pipeline.
struct PipelineConfig {
  int bucket_size = 16 * 1024;  // M (Section 6.3 settles on 16K)
  BucketStrategy strategy = BucketStrategy::kDoubleBuffered;

  /// Modelled CPU rate for the leaf-search step, queries per µs — compute
  /// with the CPU cost model on a traced run (see bench_support).
  double cpu_queries_per_us = 1.0;

  /// Level-wise batch dispatch (DESIGN.md §14): sort each bucket by key
  /// so that runs of queries sharing an inner node resolve with one
  /// modelled node load per level instead of one per query. Applies to
  /// tree variants with a level-wise kernel (implicit, regular); others
  /// keep the per-query launch. Results are written back in the caller's
  /// original query order either way.
  bool level_wise = true;
  /// Modelled CPU cost of the bucket key sort, µs per query (charged to
  /// the pre-GPU stage when level_wise is active; ~250 M keys/s radix).
  double sort_us_per_query = 0.004;

  // -- Load balancing (Section 5.5). Defaults = all inner levels on GPU. --
  int cpu_descend_levels = 0;    // D
  double cpu_split_ratio = 1.0;  // R: fraction descending only D levels on
                                 // the CPU (the rest descends D+1)
  /// Modelled CPU cost of one inner level of descent, µs per query
  /// (fallback when the by-depth table below is empty).
  double cpu_descend_us_per_level = 0.0;
  /// Modelled CPU cost of descending exactly d levels (index d; [0] = 0).
  /// Captures that the top levels are cache-resident and cheap — the
  /// premise of the load-balancing scheme.
  std::vector<double> cpu_descend_us_by_depth;
  /// Buckets in flight: 2 normally, 3 with load balancing (Section 5.5).
  int buckets_in_flight = 2;

  // -- Fault handling (only reachable when the device has an armed
  // fault injector; see fault/fault_injector.h). --
  /// Bounded retries per transfer/kernel operation before the bucket
  /// fails with a typed Status.
  int max_device_retries = 3;
  /// Modelled exponential-backoff delay before the first retry, µs
  /// (doubled per retry); charged to the failing step's timeline.
  double retry_backoff_us = 25.0;

  /// Model-track block this run's trace spans land on (a multiple of
  /// TraceSession::kModelTrackStride; the serving layer assigns one block
  /// per tree slot so multi-shard traces stay on separate tracks). Unused
  /// when tracing is compiled out.
  int trace_track_base = 0;

  /// Per-level traffic attribution sink (DESIGN.md Section 13). When set,
  /// the CPU-side stages (pre-descent, leaf search) run with a heat
  /// tracer under the sink's mutex, taken once per stage loop. Null (the
  /// default, and always null when heat is compiled out) keeps the
  /// untraced fast path.
  obs::PipelineHeat* heat = nullptr;
};

/// Aggregate result of one pipeline run.
struct PipelineStats {
  std::uint64_t queries = 0;
  double total_us = 0;
  double mqps = 0;
  double avg_latency_us = 0;
  // Average per-bucket step times of the Section 5.4 cost model.
  double t1_us = 0;   // host->device transfer
  double t2_us = 0;   // GPU inner-search kernel
  double t3_us = 0;   // device->host transfer of intermediate results
  double t4_us = 0;   // CPU share (leaf search + LB descent)
  gpu::KernelStats kernel;  // aggregated over all buckets
  double gpu_busy_us = 0;
  double cpu_busy_us = 0;
  double pcie_busy_us = 0;
  /// Average kernel and CPU time per bucket — the discovery algorithm's
  /// getSample() observables (Algorithm 1).
  double sample_gpu_us = 0;
  double sample_cpu_us = 0;
  // Fault-handling outcome (nonzero only with an armed injector).
  std::uint64_t transfer_retries = 0;
  std::uint64_t kernel_retries = 0;
};

namespace pipeline_internal {

/// Per-stage occupancy intervals of one scheduled bucket on the simulated
/// timeline — what the scheduler already decides internally, surfaced so
/// the trace exporter can draw each stage on its resource track and make
/// the cross-bucket overlap (or its absence, for kSequential) visible.
struct StageTimeline {
  double pre_start = 0, pre_end = 0;        // CPU pre-descent (LB only)
  double h2d_start = 0, h2d_end = 0;        // T1
  double kernel_start = 0, kernel_end = 0;  // T2
  double d2h_start = 0, d2h_end = 0;        // T3
  double cpu_start = 0, cpu_end = 0;        // T4 (+ LB CPU capacity)
};

/// Job-shop scheduler over the simulated platform resources; encodes the
/// overlap rules of the three strategies.
class Scheduler {
 public:
  explicit Scheduler(BucketStrategy strategy) : strategy_(strategy) {}

  /// Schedules one bucket; returns its completion time. `ready` is when
  /// the bucket's buffer set becomes available, `tpre` the CPU pre-descent
  /// time (load balancing; 0 otherwise). `timeline` (optional) receives
  /// the per-stage intervals the scheduler chose.
  double ScheduleBucket(double ready, double tpre, double t1, double t2,
                        double t3, double t4,
                        StageTimeline* timeline = nullptr) {
    double start = ready;
    StageTimeline tl;
    switch (strategy_) {
      case BucketStrategy::kSequential:
        // Nothing overlaps: chain after the previous bucket completed.
        start = std::max(start, last_end_);
        if (tpre > 0) {
          const double sp = cpu_.Acquire(start, tpre);
          tl.pre_start = sp;
          tl.pre_end = sp + tpre;
          start = sp + tpre;
        }
        {
          double s1 = h2d_.Acquire(start, t1);
          double s2 = gpu_.Acquire(s1 + t1, t2);
          double s3 = d2h_.Acquire(s2 + t2, t3);
          double s4 = cpu_.Acquire(s3 + t3, t4);
          last_end_ = s4 + t4;
          tl.h2d_start = s1;
          tl.h2d_end = s1 + t1;
          tl.kernel_start = s2;
          tl.kernel_end = s2 + t2;
          tl.d2h_start = s3;
          tl.d2h_end = s3 + t3;
          tl.cpu_start = s4;
          tl.cpu_end = s4 + t4;
        }
        break;
      case BucketStrategy::kPipelined: {
        // One GPU-side engine serializes T1+T2+T3 across buckets; only
        // the CPU step overlaps (Figure 5). A load-balancing pre-descent
        // delays this bucket's upload (latency) but its CPU *capacity* is
        // charged together with the leaf stage: the CPU threads
        // interleave descents of future buckets with current finishes, so
        // a strict descend-then-finish ordering on one timeline would
        // falsely serialize the whole pipeline.
        double s_gpu = gpu_.Acquire(start + tpre, t1 + t2 + t3);
        h2d_.Acquire(s_gpu, t1);              // utilization accounting
        d2h_.Acquire(s_gpu + t1 + t2, t3);    // utilization accounting
        double s4 = cpu_.Acquire(s_gpu + t1 + t2 + t3, t4 + tpre);
        last_end_ = s4 + t4;
        tl.pre_start = start;
        tl.pre_end = start + tpre;
        tl.h2d_start = s_gpu;
        tl.h2d_end = s_gpu + t1;
        tl.kernel_start = s_gpu + t1;
        tl.kernel_end = s_gpu + t1 + t2;
        tl.d2h_start = s_gpu + t1 + t2;
        tl.d2h_end = s_gpu + t1 + t2 + t3;
        tl.cpu_start = s4;
        tl.cpu_end = s4 + t4 + tpre;
        break;
      }
      case BucketStrategy::kDoubleBuffered: {
        // Transfers, kernel, and CPU each on their own engine (Figure 6).
        // Pre-descent is handled as in the pipelined case.
        double s1 = h2d_.Acquire(start + tpre, t1);
        double s2 = gpu_.Acquire(s1 + t1, t2);
        double s3 = d2h_.Acquire(s2 + t2, t3);
        double s4 = cpu_.Acquire(s3 + t3, t4 + tpre);
        last_end_ = s4 + t4;
        tl.pre_start = start;
        tl.pre_end = start + tpre;
        tl.h2d_start = s1;
        tl.h2d_end = s1 + t1;
        tl.kernel_start = s2;
        tl.kernel_end = s2 + t2;
        tl.d2h_start = s3;
        tl.d2h_end = s3 + t3;
        tl.cpu_start = s4;
        tl.cpu_end = s4 + t4 + tpre;
        break;
      }
    }
    if (timeline != nullptr) *timeline = tl;
    return last_end_;
  }

  double gpu_busy() const { return gpu_.busy_time(); }
  double cpu_busy() const { return cpu_.busy_time(); }
  double pcie_busy() const { return h2d_.busy_time() + d2h_.busy_time(); }

 private:
  BucketStrategy strategy_;
  sim::ResourceTimeline h2d_, d2h_, gpu_, cpu_;
  double last_end_ = 0;
};

/// Tree-variant adapters: how to pre-descend on the CPU, launch the GPU
/// kernel, and finish a query from its intermediate result.
/// Forwards a stage's heat tracer into the host tree when its traversal
/// entry point accepts one; trees without a traced overload silently run
/// untraced (their traffic shows up only in the modelled stage times).
template <typename Adapter, typename Tree, typename K, typename Tracer>
std::uint64_t DescendTraced(const Tree& tree, K query, int depth,
                            Tracer* tracer) {
  if constexpr (requires {
                  tree.host_tree().DescendLevels(query, depth, tracer);
                }) {
    return tree.host_tree().DescendLevels(query, depth, tracer);
  } else {
    return Adapter::Descend(tree, query, depth);
  }
}

template <typename K>
struct ImplicitAdapter {
  using Tree = HBImplicitTree<K>;
  static constexpr bool kLevelWise = true;

  static int Height(const Tree& tree) { return tree.host_tree().height(); }

  static std::uint64_t Descend(const Tree& tree, K query, int depth) {
    return tree.host_tree().DescendLevels(query, depth);
  }

  static gpu::KernelStats Launch(Tree& tree, gpu::DevicePtr queries,
                                 gpu::DevicePtr results, std::uint32_t count,
                                 int start_level,
                                 gpu::DevicePtr start_nodes) {
    auto params = tree.MakeKernelParams(queries, results, count, start_level,
                                        start_nodes);
    return RunImplicitInnerSearch<K>(tree.device(), params);
  }

  static gpu::KernelStats LaunchLevelWise(Tree& tree, gpu::DevicePtr queries,
                                          gpu::DevicePtr results,
                                          std::uint32_t count, int start_level,
                                          gpu::DevicePtr start_nodes) {
    auto params = tree.MakeKernelParams(queries, results, count, start_level,
                                        start_nodes);
    return RunImplicitInnerSearchLevelWise<K>(tree.device(), params);
  }

  static LookupResult<K> Finish(const Tree& tree, std::uint64_t intermediate,
                                K query) {
    return tree.host_tree().SearchLeafLine(intermediate, query);
  }

  template <typename Tracer>
  static LookupResult<K> Finish(const Tree& tree, std::uint64_t intermediate,
                                K query, Tracer* tracer) {
    if constexpr (requires {
                    tree.host_tree().SearchLeafLine(intermediate, query,
                                                    tracer);
                  }) {
      return tree.host_tree().SearchLeafLine(intermediate, query, tracer);
    } else {
      return Finish(tree, intermediate, query);
    }
  }
};

template <typename K>
struct RegularAdapter {
  using Tree = HBRegularTree<K>;
  static constexpr bool kLevelWise = true;

  static int Height(const Tree& tree) { return tree.host_tree().height(); }

  static std::uint64_t Descend(const Tree& tree, K query, int depth) {
    return tree.host_tree().DescendLevels(query, depth);
  }

  static gpu::KernelStats Launch(Tree& tree, gpu::DevicePtr queries,
                                 gpu::DevicePtr results, std::uint32_t count,
                                 int start_level,
                                 gpu::DevicePtr start_nodes) {
    auto params = tree.MakeKernelParams(queries, results, count, start_level,
                                        start_nodes);
    return RunRegularInnerSearch<K>(tree.device(), params);
  }

  static gpu::KernelStats LaunchLevelWise(Tree& tree, gpu::DevicePtr queries,
                                          gpu::DevicePtr results,
                                          std::uint32_t count, int start_level,
                                          gpu::DevicePtr start_nodes) {
    auto params = tree.MakeKernelParams(queries, results, count, start_level,
                                        start_nodes);
    return RunRegularInnerSearchLevelWise<K>(tree.device(), params);
  }

  static LookupResult<K> Finish(const Tree& tree, std::uint64_t intermediate,
                                K query) {
    typename RegularBTree<K>::LeafPosition pos{UnpackLeafNode(intermediate),
                                               UnpackLeafLine(intermediate)};
    return tree.host_tree().SearchLeafLine(pos, query);
  }

  template <typename Tracer>
  static LookupResult<K> Finish(const Tree& tree, std::uint64_t intermediate,
                                K query, Tracer* tracer) {
    typename RegularBTree<K>::LeafPosition pos{UnpackLeafNode(intermediate),
                                               UnpackLeafLine(intermediate)};
    return tree.host_tree().SearchLeafLine(pos, query, tracer);
  }
};

template <typename K>
struct FastAdapter {
  using Tree = HBFastTree<K>;
  /// HB-FAST has no level-wise kernel (the block search is already
  /// layout-coalesced); the pipeline keeps its per-query launch.
  static constexpr bool kLevelWise = false;

  static gpu::KernelStats LaunchLevelWise(Tree& tree, gpu::DevicePtr queries,
                                          gpu::DevicePtr results,
                                          std::uint32_t count, int start_level,
                                          gpu::DevicePtr start_nodes) {
    return Launch(tree, queries, results, count, start_level, start_nodes);
  }

  static int Height(const Tree& tree) {
    return tree.host_tree().block_levels();
  }

  static std::uint64_t Descend(const Tree& tree, K query, int depth) {
    return tree.host_tree().DescendBlocks(query, depth);
  }

  static gpu::KernelStats Launch(Tree& tree, gpu::DevicePtr queries,
                                 gpu::DevicePtr results, std::uint32_t count,
                                 int start_level,
                                 gpu::DevicePtr start_nodes) {
    auto params = tree.MakeKernelParams(queries, results, count, start_level,
                                        start_nodes);
    return RunFastSearch<K>(tree.device(), params);
  }

  static LookupResult<K> Finish(const Tree& tree, std::uint64_t intermediate,
                                K query) {
    return tree.host_tree().VerifyAt(intermediate, query);
  }

  template <typename Tracer>
  static LookupResult<K> Finish(const Tree& tree, std::uint64_t intermediate,
                                K query, Tracer* tracer) {
    if constexpr (requires {
                    tree.host_tree().VerifyAt(intermediate, query, tracer);
                  }) {
      return tree.host_tree().VerifyAt(intermediate, query, tracer);
    } else {
      return Finish(tree, intermediate, query);
    }
  }
};

template <typename K, typename Adapter>
Status RunPipelineChecked(typename Adapter::Tree& tree, const K* queries,
                          std::size_t count, const PipelineConfig& config,
                          std::vector<LookupResult<K>>* results,
                          PipelineStats* stats_out) {
  gpu::Device& device = tree.device();
  gpu::TransferEngine& transfer = tree.transfer();
  fault::FaultInjector* injector = device.fault_injector();
  const fault::RetryPolicy retry{config.max_device_retries,
                                 config.retry_backoff_us, 2.0};
  const int height = Adapter::Height(tree);
  // D is capped so that even the D+1 part leaves the GPU at least the
  // last inner level to search.
  const int d_levels =
      std::clamp(config.cpu_descend_levels, 0, std::max(height - 2, 0));
  const double split = std::clamp(config.cpu_split_ratio, 0.0, 1.0);
  const bool balanced = (d_levels > 0 || split < 1.0) && height >= 2;
  const bool level_wise = config.level_wise && Adapter::kLevelWise;

  if (config.bucket_size <= 0) {
    return Status::InvalidArgument("bucket_size must be positive");
  }
  const std::uint32_t m = static_cast<std::uint32_t>(config.bucket_size);
  gpu::ScopedDeviceAlloc q_dev(&device, m * sizeof(K));
  gpu::ScopedDeviceAlloc r_dev(&device, m * sizeof(std::uint64_t));
  gpu::ScopedDeviceAlloc s_dev(&device,
                          balanced ? m * sizeof(std::uint32_t) : 0);
  if (!q_dev.ok() || !r_dev.ok() || (balanced && !s_dev.ok())) {
    return Status::DeviceOom("bucket buffers do not fit in device memory");
  }

  PipelineStats& stats = *stats_out;
  stats = PipelineStats{};
  Scheduler scheduler(config.strategy);
  // Model-time spans are offset by the wall time at run start so that
  // successive pipeline runs in one trace do not all stack at ts = 0.
  HBTREE_TRACE_ONLY(const double trace_base_us = obs::TraceSession::NowUs();)
  HBTREE_TRACE_SPAN_ARG("pipeline.run", "hybrid", "queries",
                        static_cast<double>(count));
  // Start-node indices travel as 32-bit values: every level a partial
  // descent can reach has fewer than 2^32 nodes.
  std::vector<std::uint32_t> start_nodes(m);
  std::vector<std::uint64_t> intermediate(m);
  // Level-wise dispatch: per-bucket sort permutation and sorted staging
  // buffer. The device sees the sorted keys; Finish maps each result back
  // through `order` so callers keep their original query order.
  std::vector<std::uint32_t> order(level_wise ? m : 0);
  std::vector<K> sorted_q(level_wise ? m : 0);
  std::vector<double> bucket_end;
  double latency_sum = 0;

  if (results != nullptr) results->resize(count);

  if (level_wise && config.heat != nullptr) {
    // Sorted buckets let the CPU-side tracers attribute per-batch (not
    // per-query) node traffic: consecutive same-node touches collapse.
    std::lock_guard<std::mutex> lock(config.heat->mu);
    config.heat->pre_descend.set_collapse_repeats(true);
    config.heat->cpu_leaf.set_collapse_repeats(true);
  }

  for (std::size_t base = 0; base < count; base += m) {
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::size_t>(m, count - base));

    // -- Level-wise dispatch: stage this bucket in sorted key order so
    // queries sharing a node form consecutive runs (ties break by index,
    // keeping the permutation deterministic).
    const K* bq = queries + base;
    if (level_wise) {
      for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.begin() + n,
                [&](std::uint32_t a, std::uint32_t b) {
                  const K ka = queries[base + a];
                  const K kb = queries[base + b];
                  return ka < kb || (ka == kb && a < b);
                });
      for (std::uint32_t i = 0; i < n; ++i) {
        sorted_q[i] = queries[base + order[i]];
      }
      bq = sorted_q.data();
      if (config.heat != nullptr) {
        std::lock_guard<std::mutex> lock(config.heat->mu);
        config.heat->pre_descend.ResetRepeatMemo();
        config.heat->cpu_leaf.ResetRepeatMemo();
      }
    }

    // -- CPU pre-descent (Section 5.5): R*n queries descend D levels, the
    // rest D+1; the kernel is launched once per part with the matching
    // start level (stats are merged, so K_init is charged once — the
    // pre-submission effect the paper exploits with 3 buckets in flight).
    double tpre = 0;
    std::uint32_t part1 = n;
    if (balanced) {
      part1 = static_cast<std::uint32_t>(n * split);
      auto descend_cost = [&config](int depth) {
        const auto& table = config.cpu_descend_us_by_depth;
        if (depth < static_cast<int>(table.size())) return table[depth];
        return depth * config.cpu_descend_us_per_level;
      };
      if (config.heat != nullptr) {
        std::lock_guard<std::mutex> lock(config.heat->mu);
        for (std::uint32_t i = 0; i < n; ++i) {
          const int depth = i < part1 ? d_levels : d_levels + 1;
          start_nodes[i] = static_cast<std::uint32_t>(
              DescendTraced<Adapter>(tree, bq[i], depth,
                                     &config.heat->pre_descend));
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          const int depth = i < part1 ? d_levels : d_levels + 1;
          start_nodes[i] = static_cast<std::uint32_t>(
              Adapter::Descend(tree, bq[i], depth));
        }
      }
      tpre = part1 * descend_cost(d_levels) +
             (n - part1) * descend_cost(d_levels + 1);
    }
    if (level_wise) tpre += n * config.sort_us_per_query;

    // -- T1: queries (+ start nodes) to device, one combined transfer.
    // Transient transfer faults retry with exponential backoff; the
    // modelled backoff is charged to this bucket's T1.
    std::size_t t1_bytes = n * sizeof(K);
    double backoff_us = 0;
    HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
        retry,
        [&] {
          return transfer.TryCopyToDevice(q_dev.get(), bq, n * sizeof(K));
        },
        &stats.transfer_retries, &backoff_us));
    if (balanced) {
      HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
          retry,
          [&] {
            return transfer.TryCopyToDevice(s_dev.get(), start_nodes.data(),
                                            n * sizeof(std::uint32_t));
          },
          &stats.transfer_retries, &backoff_us));
      t1_bytes += n * sizeof(std::uint32_t);
    }
    const double t1 = transfer.HostToDeviceUs(t1_bytes) + backoff_us;

    // -- T2: kernel launch(es). A launch attempt is all-or-nothing, so a
    // retried attempt overwrites (not accumulates) the kernel stats.
    gpu::KernelStats ks;
    backoff_us = 0;
    HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
        retry,
        [&]() -> Status {
          if (injector != nullptr) {
            HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kKernel));
          }
          gpu::KernelStats attempt;
          auto launch = [&](gpu::DevicePtr q, gpu::DevicePtr r,
                            std::uint32_t cnt, int start_level,
                            gpu::DevicePtr s) {
            return level_wise
                       ? Adapter::LaunchLevelWise(tree, q, r, cnt,
                                                  start_level, s)
                       : Adapter::Launch(tree, q, r, cnt, start_level, s);
          };
          if (!balanced) {
            attempt = launch(q_dev.get(), r_dev.get(), n, height,
                             gpu::DevicePtr{});
          } else {
            // Both parts of the split are contiguous slices of the sorted
            // bucket, so each launch still sees sorted queries.
            if (part1 > 0) {
              attempt += launch(q_dev.get(), r_dev.get(), part1,
                                height - d_levels, s_dev.get());
            }
            if (part1 < n) {
              attempt += launch(
                  q_dev.get() + part1 * sizeof(K),
                  r_dev.get() + part1 * sizeof(std::uint64_t), n - part1,
                  height - d_levels - 1,
                  s_dev.get() + part1 * sizeof(std::uint32_t));
            }
          }
          ks = attempt;
          return Status::Ok();
        },
        &stats.kernel_retries, &backoff_us));
    stats.kernel += ks;
    if (config.heat != nullptr) {
      std::lock_guard<std::mutex> lock(config.heat->mu);
      obs::PipelineHeat& heat = *config.heat;
      if (ks.node_loads_by_level.size() > heat.kernel_node_loads.size()) {
        heat.kernel_node_loads.resize(ks.node_loads_by_level.size(), 0);
        heat.kernel_node_queries.resize(ks.node_loads_by_level.size(), 0);
      }
      for (std::size_t l = 0; l < ks.node_loads_by_level.size(); ++l) {
        heat.kernel_node_loads[l] += ks.node_loads_by_level[l];
        heat.kernel_node_queries[l] += ks.node_queries_by_level[l];
      }
      heat.kernel_dram_bytes += ks.dram_bytes;
      heat.kernel_l2_bytes += ks.l2_bytes;
      heat.kernel_launches += balanced && part1 > 0 && part1 < n ? 2 : 1;
    }
    const gpu::KernelTime kt = gpu::EstimateKernelTime(device.spec(), ks);
    if (const gpu::Device::DeviceMetrics* m = device.metrics()) {
      m->kernel_launches->Increment();
      m->occupancy->Set(kt.occupancy);
    }
    const double t2 = kt.total_us + backoff_us;

    // -- T3: intermediate results back ------------------------------------
    double t3 = 0;
    backoff_us = 0;
    HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
        retry,
        [&] {
          return transfer.TryCopyToHost(intermediate.data(), r_dev.get(),
                                        n * sizeof(std::uint64_t), &t3);
        },
        &stats.transfer_retries, &backoff_us));
    t3 += backoff_us;

    // -- T4: CPU leaf search (results map back through the sort
    // permutation when dispatch was level-wise). -------------------------
    if (config.heat != nullptr) {
      std::lock_guard<std::mutex> lock(config.heat->mu);
      for (std::uint32_t i = 0; i < n; ++i) {
        LookupResult<K> r = Adapter::Finish(tree, intermediate[i], bq[i],
                                            &config.heat->cpu_leaf);
        if (results != nullptr) {
          (*results)[base + (level_wise ? order[i] : i)] = r;
        }
      }
    } else {
      for (std::uint32_t i = 0; i < n; ++i) {
        LookupResult<K> r = Adapter::Finish(tree, intermediate[i], bq[i]);
        if (results != nullptr) {
          (*results)[base + (level_wise ? order[i] : i)] = r;
        }
      }
    }
    const double t4 = n / config.cpu_queries_per_us;

    // -- Schedule on the simulated platform -------------------------------
    const std::size_t b = bucket_end.size();
    const double ready =
        b >= static_cast<std::size_t>(config.buckets_in_flight)
            ? bucket_end[b - config.buckets_in_flight]
            : 0.0;
    StageTimeline tl;
    const double end =
        scheduler.ScheduleBucket(ready, tpre, t1, t2, t3, t4, &tl);
    HBTREE_TRACE_ONLY(if (tpre > 0) {
      HBTREE_TRACE_MODEL_SPAN(config.trace_track_base, kTrackPreDescend,
                              "bucket.pre_descend",
                              trace_base_us + tl.pre_start,
                              tl.pre_end - tl.pre_start, "bucket",
                              static_cast<double>(b));
    })
    HBTREE_TRACE_MODEL_SPAN(config.trace_track_base, kTrackH2D, "bucket.h2d",
                            trace_base_us + tl.h2d_start,
                            tl.h2d_end - tl.h2d_start, "bucket",
                            static_cast<double>(b));
    HBTREE_TRACE_MODEL_SPAN(config.trace_track_base, kTrackKernel,
                            "bucket.kernel", trace_base_us + tl.kernel_start,
                            tl.kernel_end - tl.kernel_start, "bucket",
                            static_cast<double>(b));
    HBTREE_TRACE_MODEL_SPAN(config.trace_track_base, kTrackD2H, "bucket.d2h",
                            trace_base_us + tl.d2h_start,
                            tl.d2h_end - tl.d2h_start, "bucket",
                            static_cast<double>(b));
    HBTREE_TRACE_MODEL_SPAN(config.trace_track_base, kTrackCpuLeaf,
                            "bucket.cpu_leaf", trace_base_us + tl.cpu_start,
                            tl.cpu_end - tl.cpu_start, "bucket",
                            static_cast<double>(b));
    bucket_end.push_back(end);
    latency_sum += end - ready;

    stats.t1_us += t1;
    stats.t2_us += t2;
    stats.t3_us += t3;
    stats.t4_us += t4 + tpre;
    stats.sample_gpu_us += t2;
    stats.sample_cpu_us += t4 + tpre;
  }

  const double buckets = static_cast<double>(bucket_end.size());
  stats.queries = count;
  stats.total_us = bucket_end.empty() ? 0 : bucket_end.back();
  stats.mqps = stats.total_us > 0 ? count / stats.total_us : 0;
  stats.avg_latency_us = buckets > 0 ? latency_sum / buckets : 0;
  if (buckets > 0) {
    stats.t1_us /= buckets;
    stats.t2_us /= buckets;
    stats.t3_us /= buckets;
    stats.t4_us /= buckets;
    stats.sample_gpu_us /= buckets;
    stats.sample_cpu_us /= buckets;
  }
  stats.gpu_busy_us = scheduler.gpu_busy();
  stats.cpu_busy_us = scheduler.cpu_busy();
  stats.pcie_busy_us = scheduler.pcie_busy();
  return Status::Ok();
}

template <typename K, typename Adapter>
PipelineStats RunPipeline(typename Adapter::Tree& tree, const K* queries,
                          std::size_t count, const PipelineConfig& config,
                          std::vector<LookupResult<K>>* results) {
  PipelineStats stats;
  const Status status = RunPipelineChecked<K, Adapter>(
      tree, queries, count, config, results, &stats);
  // Unreachable without an armed fault injector: callers that inject
  // faults must use the Try* entry points and handle the Status.
  HBTREE_CHECK_MSG(status.ok(), "search pipeline failed: %s",
                   status.message().c_str());
  return stats;
}

}  // namespace pipeline_internal

/// Runs the heterogeneous search pipeline on an implicit HB+-tree:
/// buckets go to the device, the GPU kernel resolves inner nodes,
/// intermediate leaf-line indices come back, and the CPU finishes in the
/// L-segment. Fully functional — `results` (optional) receives every
/// lookup — while the returned stats carry the simulated platform timing.
template <typename K>
PipelineStats RunSearchPipeline(HBImplicitTree<K>& tree, const K* queries,
                                std::size_t count,
                                const PipelineConfig& config,
                                std::vector<LookupResult<K>>* results =
                                    nullptr) {
  return pipeline_internal::RunPipeline<K, pipeline_internal::ImplicitAdapter<K>>(
      tree, queries, count, config, results);
}

/// Regular-tree variant: the kernel performs the three-step fat-node
/// search and the intermediate result packs (last inner node, leaf line).
template <typename K>
PipelineStats RunSearchPipeline(HBRegularTree<K>& tree, const K* queries,
                                std::size_t count,
                                const PipelineConfig& config,
                                std::vector<LookupResult<K>>* results =
                                    nullptr) {
  return pipeline_internal::RunPipeline<K, pipeline_internal::RegularAdapter<K>>(
      tree, queries, count, config, results);
}

/// HB-FAST variant (Section 7 future work, see hybrid/hb_fast.h): any
/// leaf-stored tree plugs into the same pipeline through an adapter.
template <typename K>
PipelineStats RunSearchPipeline(HBFastTree<K>& tree, const K* queries,
                                std::size_t count,
                                const PipelineConfig& config,
                                std::vector<LookupResult<K>>* results =
                                    nullptr) {
  return pipeline_internal::RunPipeline<K, pipeline_internal::FastAdapter<K>>(
      tree, queries, count, config, results);
}

/// Fault-tolerant entry points: identical to RunSearchPipeline, but
/// device-side failures (allocation, transfer, kernel — injected via
/// fault::FaultInjector or genuine OOM) surface as a typed Status after
/// the configured bounded retries instead of aborting. On failure the
/// device buffers are released and `results` contents are unspecified;
/// the caller owns the fallback decision (the serving layer degrades to
/// the CPU-only pipelined search, Section 4.2).
template <typename K>
Status TryRunSearchPipeline(HBImplicitTree<K>& tree, const K* queries,
                            std::size_t count, const PipelineConfig& config,
                            std::vector<LookupResult<K>>* results,
                            PipelineStats* stats) {
  return pipeline_internal::RunPipelineChecked<
      K, pipeline_internal::ImplicitAdapter<K>>(tree, queries, count, config,
                                                results, stats);
}

template <typename K>
Status TryRunSearchPipeline(HBRegularTree<K>& tree, const K* queries,
                            std::size_t count, const PipelineConfig& config,
                            std::vector<LookupResult<K>>* results,
                            PipelineStats* stats) {
  return pipeline_internal::RunPipelineChecked<
      K, pipeline_internal::RegularAdapter<K>>(tree, queries, count, config,
                                               results, stats);
}

template <typename K>
Status TryRunSearchPipeline(HBFastTree<K>& tree, const K* queries,
                            std::size_t count, const PipelineConfig& config,
                            std::vector<LookupResult<K>>* results,
                            PipelineStats* stats) {
  return pipeline_internal::RunPipelineChecked<
      K, pipeline_internal::FastAdapter<K>>(tree, queries, count, config,
                                            results, stats);
}

}  // namespace hbtree

#endif  // HBTREE_HYBRID_BUCKET_PIPELINE_H_
