#ifndef HBTREE_HYBRID_RANGE_PIPELINE_H_
#define HBTREE_HYBRID_RANGE_PIPELINE_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/workload.h"
#include "hybrid/bucket_pipeline.h"

namespace hbtree {

/// Heterogeneous range queries (Section 6.4, Figure 17).
///
/// Same division of labour as point lookups: the GPU resolves every range
/// query's *start position* through the mirrored I-segment; the CPU then
/// scans the leaf chain sequentially — which is where range queries spend
/// their time, and why the HB+-tree's advantage shrinks as ranges grow.
///
/// Results land in a flat pair buffer: query i's matches are
/// `pairs[i * max_matches .. i * max_matches + counts[i])`.

namespace range_internal {

template <typename K>
struct ImplicitRangeAdapter {
  using Tree = HBImplicitTree<K>;
  using Base = pipeline_internal::ImplicitAdapter<K>;

  static int Scan(const Tree& tree, std::uint64_t intermediate, K first_key,
                  int max_matches, KeyValue<K>* out) {
    return tree.host_tree().ScanLeaves(intermediate, first_key, max_matches,
                                       out);
  }

  template <typename Tracer>
  static int Scan(const Tree& tree, std::uint64_t intermediate, K first_key,
                  int max_matches, KeyValue<K>* out, Tracer* tracer) {
    if constexpr (requires {
                    tree.host_tree().ScanLeaves(intermediate, first_key,
                                                max_matches, out, tracer);
                  }) {
      return tree.host_tree().ScanLeaves(intermediate, first_key, max_matches,
                                         out, tracer);
    } else {
      return Scan(tree, intermediate, first_key, max_matches, out);
    }
  }
};

template <typename K>
struct RegularRangeAdapter {
  using Tree = HBRegularTree<K>;
  using Base = pipeline_internal::RegularAdapter<K>;

  static int Scan(const Tree& tree, std::uint64_t intermediate, K first_key,
                  int max_matches, KeyValue<K>* out) {
    typename RegularBTree<K>::LeafPosition pos{UnpackLeafNode(intermediate),
                                               UnpackLeafLine(intermediate)};
    return tree.host_tree().ScanLeaves(pos, first_key, max_matches, out);
  }

  template <typename Tracer>
  static int Scan(const Tree& tree, std::uint64_t intermediate, K first_key,
                  int max_matches, KeyValue<K>* out, Tracer* tracer) {
    typename RegularBTree<K>::LeafPosition pos{UnpackLeafNode(intermediate),
                                               UnpackLeafLine(intermediate)};
    return tree.host_tree().ScanLeaves(pos, first_key, max_matches, out,
                                       tracer);
  }
};

template <typename K, typename Adapter>
Status RunRangeChecked(typename Adapter::Tree& tree,
                       const RangeQuery<K>* queries, std::size_t count,
                       int max_matches, const PipelineConfig& config,
                       std::vector<KeyValue<K>>* pairs,
                       std::vector<int>* counts, PipelineStats* stats_out) {
  using Base = typename Adapter::Base;
  gpu::Device& device = tree.device();
  gpu::TransferEngine& transfer = tree.transfer();
  fault::FaultInjector* injector = device.fault_injector();
  const fault::RetryPolicy retry{config.max_device_retries,
                                 config.retry_backoff_us, 2.0};
  const int height = Base::Height(tree);

  if (config.bucket_size <= 0 || max_matches <= 0) {
    return Status::InvalidArgument(
        "bucket_size and max_matches must be positive");
  }
  const std::uint32_t m = static_cast<std::uint32_t>(config.bucket_size);
  gpu::ScopedDeviceAlloc q_dev(&device, m * sizeof(K));
  gpu::ScopedDeviceAlloc r_dev(&device, m * sizeof(std::uint64_t));
  if (!q_dev.ok() || !r_dev.ok()) {
    return Status::DeviceOom("range buffers do not fit in device memory");
  }

  PipelineStats& stats = *stats_out;
  stats = PipelineStats{};
  pipeline_internal::Scheduler scheduler(config.strategy);
  std::vector<K> first_keys(m);
  std::vector<std::uint64_t> intermediate(m);
  std::vector<double> bucket_end;
  double latency_sum = 0;

  if (pairs != nullptr) {
    pairs->resize(count * static_cast<std::size_t>(max_matches));
  }
  if (counts != nullptr) counts->assign(count, 0);

  for (std::size_t base = 0; base < count; base += m) {
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::size_t>(m, count - base));
    for (std::uint32_t i = 0; i < n; ++i) {
      first_keys[i] = queries[base + i].first_key;
    }

    // T1: start keys to the device (transient faults retry with modelled
    // backoff charged to this bucket's T1, as in the lookup pipeline).
    double backoff_us = 0;
    HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
        retry,
        [&] {
          return transfer.TryCopyToDevice(q_dev.get(), first_keys.data(),
                                          n * sizeof(K));
        },
        &stats.transfer_retries, &backoff_us));
    const double t1 = transfer.HostToDeviceUs(n * sizeof(K)) + backoff_us;

    // T2: the same inner-search kernel resolves the start positions.
    gpu::KernelStats ks;
    backoff_us = 0;
    HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
        retry,
        [&]() -> Status {
          if (injector != nullptr) {
            HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kKernel));
          }
          ks = Base::Launch(tree, q_dev.get(), r_dev.get(), n, height,
                            gpu::DevicePtr{});
          return Status::Ok();
        },
        &stats.kernel_retries, &backoff_us));
    stats.kernel += ks;
    const double t2 =
        gpu::EstimateKernelTime(device.spec(), ks).total_us + backoff_us;

    // T3: positions back to the host.
    double t3 = 0;
    backoff_us = 0;
    HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
        retry,
        [&] {
          return transfer.TryCopyToHost(intermediate.data(), r_dev.get(),
                                        n * sizeof(std::uint64_t), &t3);
        },
        &stats.transfer_retries, &backoff_us));
    t3 += backoff_us;

    // T4: CPU leaf-chain scan per query. With a heat sink configured the
    // whole stage loop runs traced under the sink's mutex (same pattern
    // as the lookup pipeline's T4).
    {
      std::unique_lock<std::mutex> heat_lock;
      if (config.heat != nullptr) {
        heat_lock = std::unique_lock<std::mutex>(config.heat->mu);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto& query = queries[base + i];
        const int want = std::min(max_matches, query.match_count);
        KeyValue<K>* out =
            pairs != nullptr
                ? pairs->data() + (base + i) * max_matches
                : nullptr;
        KeyValue<K> scratch[1];
        KeyValue<K>* dst = out != nullptr ? out : scratch;
        const int limit = out != nullptr ? want : std::min(want, 1);
        int got;
        if (config.heat != nullptr) {
          got = Adapter::Scan(tree, intermediate[i], query.first_key, limit,
                              dst, &config.heat->scan);
        } else {
          got = Adapter::Scan(tree, intermediate[i], query.first_key, limit,
                              dst);
        }
        if (counts != nullptr) (*counts)[base + i] = got;
      }
    }
    const double t4 = n / config.cpu_queries_per_us;

    const std::size_t b = bucket_end.size();
    const double ready =
        b >= static_cast<std::size_t>(config.buckets_in_flight)
            ? bucket_end[b - config.buckets_in_flight]
            : 0.0;
    const double end = scheduler.ScheduleBucket(ready, 0, t1, t2, t3, t4);
    bucket_end.push_back(end);
    latency_sum += end - ready;

    stats.t1_us += t1;
    stats.t2_us += t2;
    stats.t3_us += t3;
    stats.t4_us += t4;
  }

  const double buckets = static_cast<double>(bucket_end.size());
  stats.queries = count;
  stats.total_us = bucket_end.empty() ? 0 : bucket_end.back();
  stats.mqps = stats.total_us > 0 ? count / stats.total_us : 0;
  stats.avg_latency_us = buckets > 0 ? latency_sum / buckets : 0;
  if (buckets > 0) {
    stats.t1_us /= buckets;
    stats.t2_us /= buckets;
    stats.t3_us /= buckets;
    stats.t4_us /= buckets;
  }
  stats.gpu_busy_us = scheduler.gpu_busy();
  stats.cpu_busy_us = scheduler.cpu_busy();
  stats.pcie_busy_us = scheduler.pcie_busy();
  return Status::Ok();
}

template <typename K, typename Adapter>
PipelineStats RunRange(typename Adapter::Tree& tree,
                       const RangeQuery<K>* queries, std::size_t count,
                       int max_matches, const PipelineConfig& config,
                       std::vector<KeyValue<K>>* pairs,
                       std::vector<int>* counts) {
  PipelineStats stats;
  const Status status = RunRangeChecked<K, Adapter>(
      tree, queries, count, max_matches, config, pairs, counts, &stats);
  // Unreachable without an armed fault injector (see RunPipeline).
  HBTREE_CHECK_MSG(status.ok(), "range pipeline failed: %s",
                   status.message().c_str());
  return stats;
}

}  // namespace range_internal

/// Runs heterogeneous range queries on an implicit HB+-tree. Each query
/// returns up to `max_matches` pairs (and no more than its own
/// match_count); `config.cpu_queries_per_us` should be calibrated for the
/// scan length (see bench/fig17_range_queries).
template <typename K>
PipelineStats RunRangePipeline(HBImplicitTree<K>& tree,
                               const RangeQuery<K>* queries,
                               std::size_t count, int max_matches,
                               const PipelineConfig& config,
                               std::vector<KeyValue<K>>* pairs = nullptr,
                               std::vector<int>* counts = nullptr) {
  return range_internal::RunRange<K, range_internal::ImplicitRangeAdapter<K>>(
      tree, queries, count, max_matches, config, pairs, counts);
}

/// Regular-tree variant.
template <typename K>
PipelineStats RunRangePipeline(HBRegularTree<K>& tree,
                               const RangeQuery<K>* queries,
                               std::size_t count, int max_matches,
                               const PipelineConfig& config,
                               std::vector<KeyValue<K>>* pairs = nullptr,
                               std::vector<int>* counts = nullptr) {
  return range_internal::RunRange<K, range_internal::RegularRangeAdapter<K>>(
      tree, queries, count, max_matches, config, pairs, counts);
}

/// Fault-tolerant range entry points: device failures surface as a typed
/// Status after bounded retries instead of aborting (see
/// TryRunSearchPipeline for the contract).
template <typename K>
Status TryRunRangePipeline(HBImplicitTree<K>& tree,
                           const RangeQuery<K>* queries, std::size_t count,
                           int max_matches, const PipelineConfig& config,
                           std::vector<KeyValue<K>>* pairs,
                           std::vector<int>* counts, PipelineStats* stats) {
  return range_internal::RunRangeChecked<
      K, range_internal::ImplicitRangeAdapter<K>>(
      tree, queries, count, max_matches, config, pairs, counts, stats);
}

template <typename K>
Status TryRunRangePipeline(HBRegularTree<K>& tree,
                           const RangeQuery<K>* queries, std::size_t count,
                           int max_matches, const PipelineConfig& config,
                           std::vector<KeyValue<K>>* pairs,
                           std::vector<int>* counts, PipelineStats* stats) {
  return range_internal::RunRangeChecked<
      K, range_internal::RegularRangeAdapter<K>>(
      tree, queries, count, max_matches, config, pairs, counts, stats);
}

}  // namespace hbtree

#endif  // HBTREE_HYBRID_RANGE_PIPELINE_H_
