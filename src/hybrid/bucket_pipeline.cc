#include "hybrid/bucket_pipeline.h"

namespace hbtree {

const char* BucketStrategyName(BucketStrategy s) {
  switch (s) {
    case BucketStrategy::kSequential:
      return "sequential";
    case BucketStrategy::kPipelined:
      return "pipelined";
    case BucketStrategy::kDoubleBuffered:
      return "double-buffered";
  }
  return "unknown";
}

}  // namespace hbtree
