#ifndef HBTREE_HYBRID_HB_IMPLICIT_H_
#define HBTREE_HYBRID_HB_IMPLICIT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/macros.h"
#include "core/types.h"
#include "cpubtree/implicit_btree.h"
#include "gpusim/device.h"
#include "hybrid/gpu_kernels.h"
#include "mem/page_allocator.h"

namespace hbtree {

/// Implicit HB+-tree (Sections 5.1-5.2): the array-shaped variant for
/// search-dominated workloads.
///
/// The I-segment (inner nodes) is mirrored into GPU device memory while
/// the L-segment (leaf lines) lives only in CPU memory — leaves need the
/// most space and are touched once per query, inner levels are touched
/// H times, so the split matches each memory's capacity/bandwidth profile.
/// Updates rebuild the host tree and re-upload the I-segment (Section
/// 5.6, Figure 15).
template <typename K>
class HBImplicitTree {
 public:
  struct Config {
    typename ImplicitBTree<K>::Config tree;

    Config() {
      // Fanout drops to the key count per line so one GPU thread maps to
      // one key (Section 5.2).
      tree.hybrid_layout = true;
    }
  };

  HBImplicitTree(const Config& config, PageRegistry* registry,
                 gpu::Device* device, gpu::TransferEngine* transfer)
      : config_(config),
        host_tree_(config.tree, registry),
        device_(device),
        transfer_(transfer) {
    HBTREE_CHECK(config.tree.hybrid_layout);
    HBTREE_CHECK(device != nullptr && transfer != nullptr);
  }

  ~HBImplicitTree() {
    if (!device_nodes_.is_null()) device_->Free(device_nodes_);
  }

  HBImplicitTree(const HBImplicitTree&) = delete;
  HBImplicitTree& operator=(const HBImplicitTree&) = delete;

  /// Builds the host tree and mirrors the I-segment to the device.
  /// Returns false if the I-segment does not fit into device memory (the
  /// host tree is still valid and CPU-only search keeps working).
  bool Build(const std::vector<KeyValue<K>>& sorted_pairs) {
    host_tree_.Build(sorted_pairs);
    return UploadISegment();
  }

  /// Re-uploads the I-segment after a host-side rebuild; returns the
  /// modelled transfer time in µs (Figure 15's third phase).
  double SyncISegment() {
    HBTREE_CHECK(!device_nodes_.is_null());
    sync_epoch_.fetch_add(1, std::memory_order_relaxed);
    return transfer_->CopyToDevice(
        device_nodes_, host_tree_.i_segment_nodes(),
        host_tree_.i_segment_node_count() * kCacheLineSize);
  }

  /// Snapshot hook: monotonically increasing count of device-mirror
  /// uploads (initial Build and every SyncISegment). Lets a snapshot
  /// manager tell whether the mirror changed since a reader pinned it;
  /// readable from any thread.
  std::uint64_t sync_epoch() const {
    return sync_epoch_.load(std::memory_order_relaxed);
  }

  /// Kernel launch parameters for a bucket of `count` queries already in
  /// device memory. `start_level` < height and non-null `start_nodes`
  /// implement the load-balancing scheme (Section 5.5).
  ImplicitKernelParams<K> MakeKernelParams(
      gpu::DevicePtr queries, gpu::DevicePtr results, std::uint32_t count,
      int start_level = -1,
      gpu::DevicePtr start_nodes = gpu::DevicePtr{}) const {
    HBTREE_CHECK(!device_nodes_.is_null());
    ImplicitKernelParams<K> params;
    params.nodes = device_nodes_;
    params.level_offsets.assign(host_tree_.height() + 1, 0);
    params.level_alloc.assign(host_tree_.height() + 1, 0);
    params.level_alloc[0] = host_tree_.level_alloc(0);
    for (int level = 1; level <= host_tree_.height(); ++level) {
      params.level_offsets[level] = host_tree_.level_offset(level);
      params.level_alloc[level] = host_tree_.level_alloc(level);
    }
    params.height = host_tree_.height();
    params.start_level =
        start_level < 0 ? host_tree_.height() : start_level;
    params.fanout = host_tree_.fanout();
    params.queries = queries;
    params.start_nodes = start_nodes;
    params.results = results;
    params.count = count;
    return params;
  }

  const ImplicitBTree<K>& host_tree() const { return host_tree_; }
  ImplicitBTree<K>& host_tree() { return host_tree_; }
  gpu::Device& device() { return *device_; }
  gpu::TransferEngine& transfer() { return *transfer_; }

  std::size_t device_bytes() const { return device_bytes_; }
  /// The device mirror allocation (used by the GPU-assisted rebuild of
  /// hybrid/gpu_build.h).
  gpu::DevicePtr device_nodes() const { return device_nodes_; }

 private:
  bool UploadISegment() {
    if (!device_nodes_.is_null()) {
      device_->Free(device_nodes_);
      device_nodes_ = gpu::DevicePtr{};
    }
    const std::size_t bytes =
        host_tree_.i_segment_node_count() * kCacheLineSize;
    device_nodes_ = device_->TryMalloc(bytes);
    if (device_nodes_.is_null()) return false;
    device_bytes_ = bytes;
    sync_epoch_.fetch_add(1, std::memory_order_relaxed);
    transfer_->CopyToDevice(device_nodes_, host_tree_.i_segment_nodes(),
                            bytes);
    return true;
  }

  Config config_;
  ImplicitBTree<K> host_tree_;
  gpu::Device* device_;
  gpu::TransferEngine* transfer_;
  gpu::DevicePtr device_nodes_;
  std::size_t device_bytes_ = 0;
  std::atomic<std::uint64_t> sync_epoch_{0};
};

}  // namespace hbtree

#endif  // HBTREE_HYBRID_HB_IMPLICIT_H_
