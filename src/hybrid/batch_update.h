#ifndef HBTREE_HYBRID_BATCH_UPDATE_H_
#define HBTREE_HYBRID_BATCH_UPDATE_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/workload.h"
#include "fault/retry.h"
#include "hybrid/hb_regular.h"
#include "obs/trace.h"

namespace hbtree {

/// Batch update methods for the regular HB+-tree (Section 5.6).
enum class UpdateMethod {
  /// Asynchronous, one worker: apply all updates in main memory, then
  /// transfer the whole I-segment once.
  kAsyncSingleThread,
  /// Asynchronous, parallel: groups of queries are applied by several
  /// workers under per-node locks; queries that would split or merge are
  /// deferred to a single-threaded pass; the I-segment transfers once.
  kAsyncParallel,
  /// Synchronized: a modifying thread applies updates and enqueues every
  /// modified inner node; a synchronizing thread mirrors each node to GPU
  /// memory concurrently (one small transfer per node).
  kSynchronized,
};

const char* UpdateMethodName(UpdateMethod m);

struct BatchUpdateConfig {
  /// Worker threads actually spawned for the functional parallel phase.
  int real_threads = 4;
  /// Worker threads assumed by the cost model (the paper's machine runs
  /// 16 hardware threads; this host may have fewer).
  int model_threads = 16;
  /// Queries per parallel group (the paper processes groups of 16K).
  int group_size = 16 * 1024;
  /// Modelled single-thread cost of one update query (descend + leaf
  /// edit), in µs. Derive from the CPU cost model for the tree size.
  double cpu_update_us = 0.15;
  /// Modelled per-query lock acquisition overhead, µs.
  double lock_overhead_us = 0.02;
  /// Modelled per-query cost of the key sort that precedes the
  /// asynchronous apply (same rate the read path charges its bucket
  /// sort). Serial: it runs before the workers fan out.
  double sort_us_per_query = 0.004;
  /// Parallel scaling efficiency of the lock-based phase. Updates are
  /// dependent random accesses, so extra threads mostly hide latency the
  /// way software pipelining would; the paper measures only ~3x from 16
  /// hardware threads (Section 6.3).
  double parallel_efficiency = 0.2;
  /// Bounded retries for transient device-sync faults (TryRunBatchUpdate
  /// only; the aborting path never sees them without an armed injector).
  int max_sync_retries = 3;
  double sync_retry_backoff_us = 25.0;
};

struct BatchUpdateStats {
  std::uint64_t queries = 0;
  std::uint64_t applied = 0;     // non-duplicate inserts + present deletes
  std::uint64_t structural = 0;  // handled via the single-threaded path
  std::uint64_t modified_nodes = 0;
  std::uint64_t sync_retries = 0;  // transient sync faults retried
  std::uint64_t delta_syncs = 0;   // I-segment syncs taking the delta path
  std::uint64_t full_syncs = 0;    // I-segment syncs taking the full path
  std::uint64_t delta_nodes = 0;   // hot fragments streamed by delta syncs
  double update_us = 0;  // modelled tree-update time
  double sync_us = 0;    // modelled I-segment synchronization time
  double total_us = 0;   // method-dependent combination

  double UpdatesPerUs() const {
    return total_us > 0 ? queries / total_us : 0;
  }
};

/// Executes `batch` against the tree with the chosen method. The host
/// tree ALWAYS reflects the whole batch on return — submitted updates
/// must not silently vanish — but device-mirror synchronization can fail
/// (device OOM, injected transfer faults that survive the bounded
/// retries). In that case the returned Status is the sync error, the
/// mirror is stale (tree.mirror_valid() == false) and the caller must
/// route lookups through the CPU until a later TrySyncISegment succeeds.
/// The returned stats carry the simulated platform timing.
template <typename K>
Status TryRunBatchUpdate(HBRegularTree<K>& tree,
                         const std::vector<UpdateQuery<K>>& batch,
                         UpdateMethod method,
                         const BatchUpdateConfig& config,
                         BatchUpdateStats* stats_out) {
  BatchUpdateStats& stats = *stats_out;
  stats = BatchUpdateStats{};
  stats.queries = batch.size();
  HBTREE_TRACE_SPAN_ARG("update.batch", "hybrid", "queries",
                        static_cast<double>(batch.size()));
  RegularBTree<K>& host = tree.host_tree();
  std::vector<ModifiedNode> modified;
  const fault::RetryPolicy retry{config.max_sync_retries,
                                 config.sync_retry_backoff_us, 2.0};
  Status sync_status = Status::Ok();

  if (method == UpdateMethod::kSynchronized) {
    // Modifying thread: full structural API per query, recording modified
    // nodes; synchronizing thread mirrors each one (here executed inline;
    // the timing model runs the two threads concurrently, so the total is
    // the max of the two streams — the paper finds the transfer stream
    // dominates, bounded by the per-transfer initialization latency).
    double sync_us = 0;
    std::uint64_t applied = 0;
    for (const auto& update : batch) {
      std::vector<ModifiedNode> local;
      bool ok = update.kind == UpdateQuery<K>::Kind::kInsert
                    ? host.Insert(update.pair, &local)
                    : host.Erase(update.pair.key, &local);
      if (ok) ++applied;
      for (const auto& node : local) {
        // Once a node sync fails terminally the mirror is stale and only
        // a bulk resync can repair it — skip further per-node transfers
        // but keep applying the host-side updates.
        if (!sync_status.ok()) continue;
        double node_us = 0;
        double backoff_us = 0;
        const Status s = fault::RetryTransient(
            retry, [&] { return tree.TrySyncNode(node, &node_us); },
            &stats.sync_retries, &backoff_us);
        sync_us += node_us + backoff_us;
        if (!s.ok()) sync_status = s;
      }
      stats.modified_nodes += local.size();
    }
    stats.applied = applied;
    stats.update_us =
        batch.size() * (config.cpu_update_us + config.lock_overhead_us);
    stats.sync_us = sync_us;
    stats.total_us = std::max(stats.update_us, stats.sync_us);
    return sync_status;
  }

  // Asynchronous methods: apply everything in main memory first, in key
  // order. The stable sort keeps same-key ops in arrival order, and the
  // sorted stream is what makes gapped leaves pay: updates landing in
  // the same big leaf form a run that reuses one descent (the leaf's
  // external bound tells us when the run ends) and edits the leaf's
  // lines sequentially instead of hopping across the keyspace. The
  // per-update cost model is unchanged; the sort is charged explicitly
  // (sort_us_per_query, same rate as the read path's bucket sort).
  const bool parallel = method == UpdateMethod::kAsyncParallel;
  std::uint64_t applied = 0;
  std::uint64_t structural = 0;

  // Packed (key, index) records sort in-cache instead of chasing the
  // batch array through an index indirection; ordering by (key, index)
  // reproduces stable_sort's same-key arrival order exactly, which is
  // what makes the sorted replay equivalent to batch-order replay.
  std::vector<std::pair<K, std::uint32_t>> keyed(batch.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    keyed[i] = {batch[i].pair.key, i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::uint32_t> order(batch.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i) order[i] = keyed[i].second;

  if (!parallel) {
    NodeRef cached = kNullRef;
    K cached_bound{};
    for (std::uint32_t idx : order) {
      const auto& update = batch[idx];
      const bool is_insert = update.kind == UpdateQuery<K>::Kind::kInsert;
      // Ascending keys: while the key stays under the cached leaf's
      // external bound it descends to the same last-inner node.
      NodeRef ln;
      if (cached != kNullRef && update.pair.key <= cached_bound) {
        ln = cached;
      } else {
        ln = host.FindLastInner(update.pair.key);
        cached = ln;
        cached_bound = host.big_leaf(ln).info.upper_bound;
      }
      if (host.WouldBeStructural(ln, is_insert, update.pair.key)) {
        ++structural;
        bool ok = is_insert ? host.Insert(update.pair, &modified)
                            : host.Erase(update.pair.key, &modified);
        if (ok) ++applied;
        cached = kNullRef;  // the split/merge moved this leaf's range
      } else if (host.ApplyNonStructural(ln, is_insert, update.pair,
                                         &modified)) {
        ++applied;
      }
    }
  } else {
    // Parallel phase per group: non-structural updates under striped
    // per-node locks; structural ones deferred (paper: > 99% resolve in
    // the parallel phase thanks to the 256-entry big leaves).
    constexpr int kStripes = 1024;
    static std::mutex stripes[kStripes];
    const std::size_t group = static_cast<std::size_t>(config.group_size);
    // Spawning more functional workers than the host has cores buys no
    // parallelism — it only adds context switches and contended futex
    // waits that preempt concurrent readers (the cost model's view of
    // the paper's 16-thread machine stays `model_threads`, so modelled
    // timings do not change with the host).
    const unsigned hw = std::thread::hardware_concurrency();
    const int workers =
        std::max(1, std::min(config.real_threads,
                             hw == 0 ? config.real_threads
                                     : static_cast<int>(hw)));
    for (std::size_t begin = 0; begin < batch.size(); begin += group) {
      const std::size_t end = std::min(batch.size(), begin + group);
      std::vector<std::vector<const UpdateQuery<K>*>> deferred(workers);
      std::vector<std::vector<ModifiedNode>> worker_modified(workers);
      std::vector<std::uint64_t> worker_applied(workers, 0);
      const std::size_t span = (end - begin + workers - 1) / workers;
      // Workers take contiguous slices of the sorted order. A run of
      // equal keys must not straddle a slice boundary — same-key ops
      // only keep their arrival order within one worker — so boundaries
      // advance past it (every worker computes the same adjustment).
      auto slice_edge = [&](std::size_t x) {
        while (x > begin && x < end &&
               batch[order[x]].pair.key == batch[order[x - 1]].pair.key) {
          ++x;
        }
        return x;
      };
      auto run_worker = [&](int w) {
        const std::size_t lo = slice_edge(begin + w * span);
        const std::size_t hi =
            slice_edge(std::min(end, begin + (w + 1) * span));
        NodeRef cached = kNullRef;
        K cached_bound{};
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& update = batch[order[i]];
          const bool is_insert =
              update.kind == UpdateQuery<K>::Kind::kInsert;
          // Descent reuse is safe here because every structural query is
          // deferred: nothing in the parallel phase changes a leaf's
          // external bound, so a cached (node, bound) stays valid for
          // the whole group.
          NodeRef ln;
          if (cached != kNullRef && update.pair.key <= cached_bound) {
            ln = cached;
          } else {
            ln = host.FindLastInner(update.pair.key);
            cached = ln;
            cached_bound = host.big_leaf(ln).info.upper_bound;
          }
          // The structural check reads the same leaf state a
          // concurrent ApplyNonStructural writes, so it must run
          // under the node's stripe lock too (an unlocked
          // "optimistic" pre-check would be a data race; structural
          // queries are <1% of the batch, so there is nothing to
          // save by dodging the lock).
          std::lock_guard<std::mutex> lock(stripes[ln % kStripes]);
          if (host.WouldBeStructural(ln, is_insert, update.pair.key)) {
            deferred[w].push_back(&update);
            continue;  // deferred: the leaf is untouched, cache holds
          }
          if (host.ApplyNonStructural(ln, is_insert, update.pair,
                                      &worker_modified[w])) {
            ++worker_applied[w];
          }
        }
      };
      if (workers == 1) {
        // Single functional worker: run inline, no thread spawn/join.
        run_worker(0);
      } else {
        std::vector<std::thread> threads;
        for (int w = 0; w < workers; ++w) {
          threads.emplace_back(run_worker, w);
        }
        for (auto& thread : threads) thread.join();
      }
      for (int w = 0; w < workers; ++w) {
        applied += worker_applied[w];
        modified.insert(modified.end(), worker_modified[w].begin(),
                        worker_modified[w].end());
        // Single-threaded pass over the deferred (structural) queries.
        for (const UpdateQuery<K>* update : deferred[w]) {
          ++structural;
          const bool is_insert =
              update->kind == UpdateQuery<K>::Kind::kInsert;
          bool ok = is_insert ? host.Insert(update->pair, &modified)
                              : host.Erase(update->pair.key, &modified);
          if (ok) ++applied;
        }
      }
    }
  }

  stats.applied = applied;
  stats.structural = structural;
  stats.modified_nodes = modified.size();

  // One I-segment transfer: TrySyncISegment streams only the dirty hot
  // fragments when the mirror allows it, else uploads the whole segment.
  const std::uint64_t delta0 = tree.delta_syncs();
  const std::uint64_t full0 = tree.full_syncs();
  const std::uint64_t delta_nodes0 = tree.delta_nodes_synced();
  double sync_us = 0;
  double backoff_us = 0;
  {
    HBTREE_TRACE_SPAN("update.sync", "hybrid");
    sync_status = fault::RetryTransient(
        retry, [&] { return tree.TrySyncISegment(&sync_us); },
        &stats.sync_retries, &backoff_us);
  }
  stats.sync_us = sync_us + backoff_us;
  stats.delta_syncs = tree.delta_syncs() - delta0;
  stats.full_syncs = tree.full_syncs() - full0;
  stats.delta_nodes = tree.delta_nodes_synced() - delta_nodes0;

  const double sort_us = batch.size() * config.sort_us_per_query;
  const double single_us =
      batch.size() * config.cpu_update_us +
      structural * config.cpu_update_us;  // structural queries run twice
  if (parallel) {
    const double lock_us = batch.size() * config.lock_overhead_us;
    stats.update_us =
        sort_us +
        (single_us + lock_us) /
            (config.model_threads * config.parallel_efficiency) +
        structural * config.cpu_update_us;  // serial tail
  } else {
    stats.update_us = sort_us + single_us;
  }
  stats.total_us = stats.update_us + stats.sync_us;
  return sync_status;
}

/// Aborting convenience wrapper with the original signature.
template <typename K>
BatchUpdateStats RunBatchUpdate(HBRegularTree<K>& tree,
                                const std::vector<UpdateQuery<K>>& batch,
                                UpdateMethod method,
                                const BatchUpdateConfig& config) {
  BatchUpdateStats stats;
  const Status status =
      TryRunBatchUpdate(tree, batch, method, config, &stats);
  // Unreachable without an armed fault injector (see RunPipeline).
  HBTREE_CHECK_MSG(status.ok(), "batch update device sync failed: %s",
                   status.message().c_str());
  return stats;
}

/// Mixed search/update execution on the CPU (Appendix B.3, Figure 21):
/// query-processing threads resolve a stream whose fraction
/// `update_ratio` are updates, comparing the synchronous and asynchronous
/// I-segment maintenance strategies.
struct MixedWorkloadStats {
  std::uint64_t operations = 0;
  std::uint64_t updates = 0;
  std::uint64_t modified_nodes = 0;
  double total_us = 0;
  double mops() const { return total_us > 0 ? operations / total_us : 0; }
};

template <typename K>
MixedWorkloadStats RunMixedWorkload(HBRegularTree<K>& tree,
                                    const std::vector<K>& search_queries,
                                    const std::vector<UpdateQuery<K>>& updates,
                                    double update_ratio, UpdateMethod method,
                                    const BatchUpdateConfig& config,
                                    double cpu_search_us) {
  HBTREE_CHECK(update_ratio >= 0 && update_ratio <= 1);
  RegularBTree<K>& host = tree.host_tree();
  MixedWorkloadStats stats;
  std::size_t update_next = 0;
  std::size_t search_next = 0;
  double accumulated_updates = 0;
  double sync_us = 0;
  std::uint64_t modified_count = 0;
  // Interleave deterministically at the requested ratio until either
  // stream runs dry.
  const std::size_t total = search_queries.size() + updates.size();
  for (std::size_t i = 0; i < total; ++i) {
    accumulated_updates += update_ratio;
    const bool do_update = accumulated_updates >= 1.0 &&
                           update_next < updates.size();
    if (!do_update && search_next >= search_queries.size()) break;
    if (do_update) {
      accumulated_updates -= 1.0;
      const auto& update = updates[update_next++];
      std::vector<ModifiedNode> local;
      bool is_insert = update.kind == UpdateQuery<K>::Kind::kInsert;
      if (is_insert) {
        host.Insert(update.pair, &local);
      } else {
        host.Erase(update.pair.key, &local);
      }
      modified_count += local.size();
      if (method == UpdateMethod::kSynchronized) {
        for (const auto& node : local) sync_us += tree.SyncNode(node);
      }
      ++stats.updates;
    } else if (search_next < search_queries.size()) {
      host.Search(search_queries[search_next++]);
    }
    ++stats.operations;
  }
  stats.modified_nodes = modified_count;
  if (method != UpdateMethod::kSynchronized) {
    sync_us = tree.SyncISegment();
  }

  // Every operation pays the mutex/synchronization overhead the paper
  // observes even at 100% searches (Appendix B.3).
  const double op_us =
      (stats.operations - stats.updates) * (cpu_search_us +
                                            config.lock_overhead_us) +
      stats.updates * (config.cpu_update_us + config.lock_overhead_us);
  const double cpu_us =
      op_us / (config.model_threads * config.parallel_efficiency);
  if (method == UpdateMethod::kSynchronized) {
    stats.total_us = std::max(cpu_us, sync_us);
  } else {
    // Asynchronous: the bulk transfer is excluded, as in Figure 21.
    stats.total_us = cpu_us;
  }
  return stats;
}

}  // namespace hbtree

#endif  // HBTREE_HYBRID_BATCH_UPDATE_H_
