#ifndef HBTREE_HYBRID_GPU_BUILD_H_
#define HBTREE_HYBRID_GPU_BUILD_H_

#include <cstdint>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"
#include "cpubtree/implicit_btree.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "gpusim/cost_model.h"
#include "gpusim/device.h"
#include "gpusim/warp.h"

namespace hbtree {

/// GPU-assisted I-segment construction — the paper's future-work
/// direction #1 ("this could be further improved by employing GPU cycles
/// in support of parallel update query execution", Section 7), applied to
/// the implicit tree's rebuild path.
///
/// Observation: the implicit I-segment is nothing but the leaf-line
/// maxima regrouped level by level. So instead of building it on the CPU
/// and shipping the whole segment over PCIe (Figure 15's third bar), the
/// host ships only the *leaf maxima* and a kernel builds every inner
/// level in device memory with perfectly coalesced streaming accesses —
/// saving both host build time and part of the transfer.

template <typename K>
struct ImplicitBuildParams {
  gpu::DevicePtr nodes;    // I-segment output (same layout as the mirror)
  gpu::DevicePtr maxima_a; // scratch: child maxima of the current level
  gpu::DevicePtr maxima_b; // scratch: maxima of the level being built
  std::vector<std::uint64_t> level_offsets;  // node offsets, per level
  std::vector<std::uint64_t> level_alloc;    // node counts, per level
  int height = 0;
  int fanout = 0;  // == keys per node (hybrid layout)
  bool pin_last_key = true;  // hybrid layout: K_F-1 := kMax
};

/// Builds all inner levels on the device. `maxima_a` must hold the
/// leaf-line maxima (level_alloc[0] keys, padding = kMax). Returns kernel
/// stats for the cost model.
template <typename K>
gpu::KernelStats RunImplicitBuildKernel(gpu::Device& device,
                                        const ImplicitBuildParams<K>& p) {
  gpu::KernelStats stats;
  constexpr int kWarp = gpu::WarpScope::kWarpSize;
  constexpr K kMax = KeyTraits<K>::kMax;
  const int keys_per_node = KeyTraits<K>::kPerCacheLine;

  gpu::DevicePtr src = p.maxima_a;
  gpu::DevicePtr dst = p.maxima_b;
  std::uint64_t child_count = p.level_alloc[0];

  for (int level = 1; level <= p.height; ++level) {
    const std::uint64_t node_count = p.level_alloc[level];
    const std::uint64_t key_count = node_count * keys_per_node;
    // One lane per key: reads are consecutive child maxima (coalesced),
    // writes stream into the I-segment.
    for (std::uint64_t base = 0; base < key_count; base += kWarp) {
      const int lanes = static_cast<int>(
          std::min<std::uint64_t>(kWarp, key_count - base));
      gpu::WarpScope warp(&device, &stats, lanes);
      std::uint64_t in_off[kWarp];
      std::uint64_t out_off[kWarp];
      K value[kWarp];

      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t key_index = base + lane;
        const std::uint64_t node = key_index / keys_per_node;
        const int j = static_cast<int>(key_index % keys_per_node);
        // Child of slot j; fanout may exceed keys_per_node by one (the
        // CPU layout), in which case the last child has no key.
        const std::uint64_t child = node * p.fanout + j;
        in_off[lane] =
            std::min(child, child_count - 1) * sizeof(K);  // clamped read
        out_off[lane] =
            (p.level_offsets[level] + node) * kCacheLineSize +
            j * sizeof(K);
        (void)value;
      }
      warp.Gather(src, in_off, lanes, value);
      warp.Instruction(2);
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t key_index = base + lane;
        const std::uint64_t node = key_index / keys_per_node;
        const int j = static_cast<int>(key_index % keys_per_node);
        const std::uint64_t child = node * p.fanout + j;
        if (child >= child_count) value[lane] = kMax;
        if (p.pin_last_key && j == keys_per_node - 1) value[lane] = kMax;
        (void)node;
      }
      warp.Scatter(p.nodes, out_off, lanes, value);

      // Lanes owning a node's last child also emit the node's subtree
      // maximum into the next level's scratch.
      std::uint64_t max_off[kWarp];
      K max_val[kWarp];
      int emitters = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t key_index = base + lane;
        const std::uint64_t node = key_index / keys_per_node;
        const int j = static_cast<int>(key_index % keys_per_node);
        if (j != 0) continue;  // one emitter per node, lane j==0
        const std::uint64_t last_child = node * p.fanout + p.fanout - 1;
        const K* maxima = device.HostViewAs<K>(src);
        max_val[emitters] =
            last_child < child_count ? maxima[last_child] : kMax;
        max_off[emitters] = node * sizeof(K);
        ++emitters;
      }
      if (emitters > 0) {
        warp.Scatter(dst, max_off, emitters, max_val);
        warp.Instruction(1);
      }
    }
    std::swap(src, dst);
    child_count = node_count;
  }
  return stats;
}

/// Host-side driver: builds the L-segment and host I-segment as usual,
/// then reconstructs the device I-segment from the uploaded leaf maxima
/// instead of transferring the whole segment. On success `*us_out`
/// receives the modelled time (maxima upload + build kernel) in µs;
/// compare with HBImplicitTree::SyncISegment (upload of the full
/// segment). Device failures (scratch OOM, injected transfer or kernel
/// faults) surface as a typed Status after bounded retries of the
/// transient ones.
///
/// `device_nodes` must be the tree's device mirror allocation.
template <typename K>
Status TryBuildISegmentOnDevice(const ImplicitBTree<K>& host,
                                gpu::Device& device,
                                gpu::TransferEngine& transfer,
                                gpu::DevicePtr device_nodes, double* us_out,
                                gpu::KernelStats* stats_out = nullptr,
                                const fault::RetryPolicy& retry = {}) {
  HBTREE_CHECK(host.height() >= 1);
  const std::uint64_t leaf_lines = host.level_alloc(0);
  fault::FaultInjector* injector = device.fault_injector();

  // Leaf maxima on the host (a streaming pass the CPU does during the
  // L-segment rebuild anyway).
  std::vector<K> maxima(leaf_lines);
  const auto* leaves = host.l_segment_lines();
  constexpr int kPairs = KeyTraits<K>::kPairsPerCacheLine;
  for (std::uint64_t line = 0; line < leaf_lines; ++line) {
    maxima[line] = leaves[line].pairs[kPairs - 1].key;
  }

  gpu::ScopedDeviceAlloc maxima_a(&device, leaf_lines * sizeof(K));
  gpu::ScopedDeviceAlloc maxima_b(
      &device, std::max<std::uint64_t>(leaf_lines, 1) * sizeof(K));
  if (!maxima_a.ok() || !maxima_b.ok()) {
    return Status::DeviceOom(
        "build scratch maxima do not fit in device memory");
  }

  double backoff_us = 0;
  HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
      retry,
      [&] {
        return transfer.TryCopyToDevice(maxima_a.get(), maxima.data(),
                                        leaf_lines * sizeof(K));
      },
      nullptr, &backoff_us));
  double total_us =
      transfer.HostToDeviceUs(leaf_lines * sizeof(K)) + backoff_us;

  ImplicitBuildParams<K> params;
  params.nodes = device_nodes;
  params.maxima_a = maxima_a.get();
  params.maxima_b = maxima_b.get();
  params.height = host.height();
  params.fanout = host.fanout();
  params.pin_last_key = host.config().hybrid_layout;
  params.level_offsets.assign(host.height() + 1, 0);
  params.level_alloc.assign(host.height() + 1, 0);
  params.level_alloc[0] = leaf_lines;
  for (int level = 1; level <= host.height(); ++level) {
    params.level_offsets[level] = host.level_offset(level);
    params.level_alloc[level] = host.level_alloc(level);
  }
  gpu::KernelStats stats;
  backoff_us = 0;
  HBTREE_RETURN_IF_ERROR(fault::RetryTransient(
      retry,
      [&]() -> Status {
        if (injector != nullptr) {
          HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kKernel));
        }
        stats = RunImplicitBuildKernel<K>(device, params);
        return Status::Ok();
      },
      nullptr, &backoff_us));
  if (stats_out != nullptr) *stats_out = stats;
  total_us += gpu::EstimateKernelTime(device.spec(), stats).total_us;
  total_us += backoff_us;

  if (us_out != nullptr) *us_out = total_us;
  return Status::Ok();
}

/// Aborting convenience wrapper; returns the modelled time in µs.
template <typename K>
double BuildISegmentOnDevice(const ImplicitBTree<K>& host,
                             gpu::Device& device,
                             gpu::TransferEngine& transfer,
                             gpu::DevicePtr device_nodes,
                             gpu::KernelStats* stats_out = nullptr) {
  double us = 0;
  const Status status = TryBuildISegmentOnDevice(
      host, device, transfer, device_nodes, &us, stats_out);
  // Unreachable without an armed fault injector (see RunPipeline).
  HBTREE_CHECK_MSG(status.ok(), "device-side I-segment build failed: %s",
                   status.message().c_str());
  return us;
}

}  // namespace hbtree

#endif  // HBTREE_HYBRID_GPU_BUILD_H_
