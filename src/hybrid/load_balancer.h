#ifndef HBTREE_HYBRID_LOAD_BALANCER_H_
#define HBTREE_HYBRID_LOAD_BALANCER_H_

#include <algorithm>
#include <cstdint>

#include "hybrid/bucket_pipeline.h"

namespace hbtree {

/// Result of the load-balance discovery (Algorithm 1, Section 5.5).
struct LoadBalanceSetting {
  int d = 0;        // inner levels searched by the CPU
  double r = 1.0;   // fraction of each bucket descending only D levels
  double sample_gpu_us = 0;
  double sample_cpu_us = 0;
};

/// Runs the paper's discovery algorithm: starting from (D = 0, R = 1) —
/// maximum GPU load — it raises D while the GPU is the bottleneck, then
/// binary-searches R for four steps. `getSample` is realized by running
/// the pipeline over `sample_queries` and reading the average per-bucket
/// GPU and CPU times.
///
/// `base` must carry the platform-derived CPU rates
/// (cpu_queries_per_us, cpu_descend_us_per_level); buckets_in_flight is
/// forced to 3 as in the load-balanced HB+-tree.
template <typename HB, typename K>
LoadBalanceSetting DiscoverLoadBalance(HB& tree, const K* sample_queries,
                                       std::size_t count,
                                       PipelineConfig base) {
  base.buckets_in_flight = 3;
  const int height = tree.host_tree().height();
  const int max_d = std::max(0, height - 2);

  // Degenerate cases: with no sample there is nothing to measure, and a
  // tree of height < 2 has no inner level the CPU could take over while
  // leaving the GPU at least one (the pipeline disables balancing for
  // such trees too). Return the all-GPU default instead of running the
  // binary search on meaningless (zero) samples, which would drift R
  // away from 1 and prescribe partial descents no component executes.
  if (count == 0 || height < 2) {
    return LoadBalanceSetting{};
  }

  auto get_sample = [&](int d, double r) {
    PipelineConfig config = base;
    config.cpu_descend_levels = d;
    config.cpu_split_ratio = r;
    PipelineStats stats =
        RunSearchPipeline(tree, sample_queries, count, config);
    return stats;
  };

  LoadBalanceSetting setting;
  setting.d = 0;
  setting.r = 1.0;
  PipelineStats sample = get_sample(setting.d, setting.r);
  while (sample.sample_gpu_us > sample.sample_cpu_us && setting.d < max_d) {
    ++setting.d;
    sample = get_sample(setting.d, setting.r);
  }
  setting.r = 0.5;
  for (int step = 2; step <= 5; ++step) {
    sample = get_sample(setting.d, setting.r);
    // Convention here: R is the fraction descending only D levels on the
    // CPU, so a *smaller* R moves work to the CPU. (The paper's text and
    // its Equation 4 use opposite conventions for R; we follow the text
    // and adjust the update direction accordingly.)
    if (sample.sample_gpu_us > sample.sample_cpu_us) {
      setting.r -= 1.0 / (1 << step);
    } else {
      setting.r += 1.0 / (1 << step);
    }
  }
  // The ±1/2^step walk keeps R in (0, 1) for any sample sequence, and the
  // raise-D loop stops at max_d = height - 2; clamp anyway so a future
  // change to either loop cannot hand the pipeline an out-of-range
  // setting (it clamps too, but a silently-clamped discovery result
  // would misreport what was discovered).
  setting.d = std::clamp(setting.d, 0, max_d);
  setting.r = std::clamp(setting.r, 0.0, 1.0);
  setting.sample_gpu_us = sample.sample_gpu_us;
  setting.sample_cpu_us = sample.sample_cpu_us;
  return setting;
}

/// Applies a discovered setting to a pipeline configuration.
inline PipelineConfig WithLoadBalance(PipelineConfig config,
                                      const LoadBalanceSetting& setting) {
  config.cpu_descend_levels = setting.d;
  config.cpu_split_ratio = setting.r;
  config.buckets_in_flight = 3;
  return config;
}

}  // namespace hbtree

#endif  // HBTREE_HYBRID_LOAD_BALANCER_H_
