#ifndef HBTREE_HYBRID_HB_REGULAR_H_
#define HBTREE_HYBRID_HB_REGULAR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"
#include "cpubtree/regular_btree.h"
#include "fault/fault_injector.h"
#include "gpusim/device.h"
#include "hybrid/gpu_kernels.h"
#include "mem/page_allocator.h"

namespace hbtree {

/// Regular HB+-tree (Sections 5.2, 5.6): the pointer-based variant that
/// supports efficient batch updates.
///
/// Both inner pools' hot fragments (all inner levels, including the last)
/// form the I-segment mirrored into device memory as two flat arrays
/// indexed by pool slot, so the host's child references are valid device
/// indices without translation. Cold fragments and big leaves stay on the
/// CPU only.
///
/// Synchronization (Section 5.6) offers the paper's two granularities:
///  * SyncNode — one hot fragment per modified node (the synchronous
///    method's unit of transfer);
///  * SyncISegment — the whole mirror at once (the asynchronous method).
template <typename K>
class HBRegularTree {
 public:
  using Hot = RegularInnerHot<K>;

  struct Config {
    typename RegularBTree<K>::Config tree;
    /// Headroom factor for the device arrays so node allocations from
    /// updates rarely force a device realloc.
    double device_headroom = 1.25;
    /// TrySyncISegment takes the delta path only when its worst-case
    /// modelled cost (every dirty fragment shipped as its own streamed
    /// transfer — run coalescing can only improve on that) stays below
    /// this fraction of the full-mirror upload cost. Below 1.0 keeps a
    /// margin so borderline batches prefer the simpler full path.
    double delta_sync_cost_margin = 0.9;
  };

  HBRegularTree(const Config& config, PageRegistry* registry,
                gpu::Device* device, gpu::TransferEngine* transfer)
      : config_(config),
        host_tree_(config.tree, registry),
        device_(device),
        transfer_(transfer) {
    HBTREE_CHECK(device != nullptr && transfer != nullptr);
  }

  ~HBRegularTree() { FreeDeviceArrays(); }

  HBRegularTree(const HBRegularTree&) = delete;
  HBRegularTree& operator=(const HBRegularTree&) = delete;

  /// Builds the host tree and mirrors the I-segment. Returns false if the
  /// mirror does not fit into device memory.
  bool Build(const std::vector<KeyValue<K>>& sorted_pairs) {
    host_tree_.Build(sorted_pairs);
    return ReallocAndSync();
  }

  /// Copies one modified node's hot fragment to the device; returns the
  /// modelled transfer time in µs. Grows the device arrays first if the
  /// node lies beyond them (rare; costed as a full sync).
  double SyncNode(const ModifiedNode& node) {
    if (node.ref >= (node.last_level ? last_capacity_ : inner_capacity_)) {
      return ReallocAndSyncTimed();
    }
    const Hot& hot = node.last_level ? host_tree_.last_hot(node.ref)
                                     : host_tree_.inner_hot(node.ref);
    gpu::DevicePtr dst =
        (node.last_level ? device_last_ : device_inner_) +
        static_cast<std::uint64_t>(node.ref) * sizeof(Hot);
    sync_epoch_.fetch_add(1, std::memory_order_relaxed);
    return transfer_->StreamedCopyToDevice(dst, &hot, sizeof(Hot));
  }

  /// Re-uploads the whole I-segment (both pools); returns the modelled
  /// transfer time in µs.
  double SyncISegment() { return ReallocAndSyncTimed(); }

  /// Fault-aware node sync. On an injected transfer fault nothing is
  /// copied, the mirror is marked stale (mirror_valid() == false — the
  /// host node changed but the device copy did not) and a transient
  /// Status is returned. On success `*us` (optional) receives the
  /// modelled transfer time; a node-granular success does NOT restore a
  /// mirror already marked stale.
  Status TrySyncNode(const ModifiedNode& node, double* us = nullptr) {
    if (node.ref >= (node.last_level ? last_capacity_ : inner_capacity_)) {
      return TrySyncISegment(us);
    }
    fault::FaultInjector* injector = device_->fault_injector();
    if (injector != nullptr) {
      const Status status = injector->Check(fault::Site::kTransferH2D);
      if (!status.ok()) {
        mirror_valid_.store(false, std::memory_order_relaxed);
        return status;
      }
    }
    const Hot& hot = node.last_level ? host_tree_.last_hot(node.ref)
                                     : host_tree_.inner_hot(node.ref);
    gpu::DevicePtr dst =
        (node.last_level ? device_last_ : device_inner_) +
        static_cast<std::uint64_t>(node.ref) * sizeof(Hot);
    sync_epoch_.fetch_add(1, std::memory_order_relaxed);
    const double t = transfer_->StreamedCopyToDevice(dst, &hot, sizeof(Hot));
    if (us != nullptr) *us = t;
    return Status::Ok();
  }

  /// Fault-aware I-segment sync, delta-first (Section 5.6): when the
  /// mirror is valid, the device arrays are big enough, and the pools'
  /// dirty lists cover only a small fraction of the segment, streams just
  /// the dirty hot fragments (coalescing slot runs) instead of
  /// re-uploading the whole mirror. Falls back to the full upload
  /// otherwise. A delta-path fault marks the mirror stale but KEEPS the
  /// dirty marks, so the retry — which sees mirror_valid() == false —
  /// takes the full path and repairs everything the delta would have
  /// missed. Failure on the full path behaves as before (device OOM or
  /// injected transfer fault → stale mirror); success restores it — the
  /// recovery path a circuit breaker probes.
  Status TrySyncISegment(double* us = nullptr) {
    const std::size_t dirty = host_tree_.inner_pool().dirty_count() +
                              host_tree_.leaf_pool().dirty_count();
    const bool fits = host_tree_.inner_pool().high_water() <=
                          inner_capacity_ &&
                      host_tree_.leaf_pool().high_water() <= last_capacity_;
    const double delta_worst_us =
        static_cast<double>(dirty) *
        transfer_->StreamedHostToDeviceUs(sizeof(Hot));
    const bool delta_ok =
        fits && mirror_valid() &&
        delta_worst_us <= config_.delta_sync_cost_margin *
                              transfer_->HostToDeviceUs(i_segment_bytes());
    if (!delta_ok) {
      HBTREE_RETURN_IF_ERROR(TryReallocAndSync());
      full_syncs_.fetch_add(1, std::memory_order_relaxed);
      if (us != nullptr) *us = transfer_->HostToDeviceUs(i_segment_bytes());
      return Status::Ok();
    }
    // Delta: one H2D transfer for fault purposes, like the bulk path.
    fault::FaultInjector* injector = device_->fault_injector();
    if (injector != nullptr) {
      const Status status = injector->Check(fault::Site::kTransferH2D);
      if (!status.ok()) {
        mirror_valid_.store(false, std::memory_order_relaxed);
        return status;
      }
    }
    double t = 0;
    std::size_t nodes = 0;
    t += CopyDirtySlots(host_tree_.inner_pool(), device_inner_, &nodes);
    t += CopyDirtySlots(host_tree_.leaf_pool(), device_last_, &nodes);
    host_tree_.inner_pool().ClearDirty();
    host_tree_.leaf_pool().ClearDirty();
    sync_epoch_.fetch_add(1, std::memory_order_relaxed);
    delta_syncs_.fetch_add(1, std::memory_order_relaxed);
    delta_nodes_synced_.fetch_add(nodes, std::memory_order_relaxed);
    if (us != nullptr) *us = t;
    return Status::Ok();
  }

  /// Sync-path outcome counters (serve/bench observability).
  std::uint64_t delta_syncs() const {
    return delta_syncs_.load(std::memory_order_relaxed);
  }
  std::uint64_t full_syncs() const {
    return full_syncs_.load(std::memory_order_relaxed);
  }
  std::uint64_t delta_nodes_synced() const {
    return delta_nodes_synced_.load(std::memory_order_relaxed);
  }

  /// True while the device mirror reflects every host-side update that
  /// was synced. GPU lookups through a stale mirror would silently return
  /// wrong results, so serving code must check this before taking the
  /// device path and fall back to CPU-only search while it is false.
  bool mirror_valid() const {
    return mirror_valid_.load(std::memory_order_relaxed);
  }

  /// Kernel launch parameters for a bucket of `count` queries in device
  /// memory (see RunRegularInnerSearch).
  RegularKernelParams<K> MakeKernelParams(
      gpu::DevicePtr queries, gpu::DevicePtr results, std::uint32_t count,
      int start_level = -1,
      gpu::DevicePtr start_nodes = gpu::DevicePtr{}) const {
    HBTREE_CHECK(!device_inner_.is_null() || host_tree_.height() == 1);
    RegularKernelParams<K> params;
    params.inner_hot = device_inner_;
    params.last_hot = device_last_;
    params.root = host_tree_.root();
    params.root_level = host_tree_.height();
    params.start_level =
        start_level < 0 ? host_tree_.height() : start_level;
    params.queries = queries;
    params.start_nodes = start_nodes;
    params.results = results;
    params.count = count;
    return params;
  }

  const RegularBTree<K>& host_tree() const { return host_tree_; }
  RegularBTree<K>& host_tree() { return host_tree_; }
  gpu::Device& device() { return *device_; }
  gpu::TransferEngine& transfer() { return *transfer_; }

  /// Snapshot hook: monotonically increasing count of device-mirror
  /// synchronizations (node-granular or whole-I-segment). A snapshot
  /// manager serving reads from this tree can compare epochs to tell
  /// whether the mirror changed since a reader pinned it; readable from
  /// any thread.
  std::uint64_t sync_epoch() const {
    return sync_epoch_.load(std::memory_order_relaxed);
  }

  std::size_t device_bytes() const {
    return (inner_capacity_ + last_capacity_) * sizeof(Hot);
  }
  std::size_t i_segment_bytes() const {
    return (host_tree_.inner_pool().high_water() +
            host_tree_.leaf_pool().high_water()) *
           sizeof(Hot);
  }

 private:
  void FreeDeviceArrays() {
    if (!device_inner_.is_null()) device_->Free(device_inner_);
    if (!device_last_.is_null()) device_->Free(device_last_);
    device_inner_ = gpu::DevicePtr{};
    device_last_ = gpu::DevicePtr{};
    inner_capacity_ = last_capacity_ = 0;
  }

  bool ReallocAndSync() { return TryReallocAndSync().ok(); }

  Status TryReallocAndSync() {
    const std::size_t need_inner = host_tree_.inner_pool().high_water();
    const std::size_t need_last = host_tree_.leaf_pool().high_water();
    if (need_inner > inner_capacity_ || need_last > last_capacity_) {
      FreeDeviceArrays();
      mirror_valid_.store(false, std::memory_order_relaxed);
      std::size_t cap_inner = static_cast<std::size_t>(
          need_inner * config_.device_headroom) + 64;
      std::size_t cap_last = static_cast<std::size_t>(
          need_last * config_.device_headroom) + 64;
      device_inner_ = device_->TryMalloc(cap_inner * sizeof(Hot));
      device_last_ = device_->TryMalloc(cap_last * sizeof(Hot));
      if (device_inner_.is_null() || device_last_.is_null()) {
        FreeDeviceArrays();
        return Status::DeviceOom(
            "I-segment mirror does not fit in device memory");
      }
      inner_capacity_ = cap_inner;
      last_capacity_ = cap_last;
    }
    // The bulk upload counts as one H2D transfer for fault purposes: an
    // injected fault leaves the (possibly freshly reallocated) arrays
    // without the new pool contents, so the mirror goes stale.
    fault::FaultInjector* injector = device_->fault_injector();
    if (injector != nullptr) {
      const Status status = injector->Check(fault::Site::kTransferH2D);
      if (!status.ok()) {
        mirror_valid_.store(false, std::memory_order_relaxed);
        return status;
      }
    }
    CopyPools();
    // The full upload absorbs every host-side change, so the pools'
    // dirty lists restart empty.
    host_tree_.inner_pool().ClearDirty();
    host_tree_.leaf_pool().ClearDirty();
    sync_epoch_.fetch_add(1, std::memory_order_relaxed);
    mirror_valid_.store(true, std::memory_order_relaxed);
    return Status::Ok();
  }

  double ReallocAndSyncTimed() {
    HBTREE_CHECK(ReallocAndSync());
    // One bulk transfer of the live I-segment.
    return transfer_->HostToDeviceUs(i_segment_bytes());
  }

  /// Chunk-wise copy of both pools' hot fragments into the device arrays.
  void CopyPools() {
    CopyPool(host_tree_.inner_pool(), device_inner_);
    CopyPool(host_tree_.leaf_pool(), device_last_);
  }

  template <typename Pool>
  void CopyPool(const Pool& pool, gpu::DevicePtr base) {
    const std::size_t chunk_slots = pool.chunk_capacity();
    std::size_t remaining = pool.high_water();
    for (std::size_t c = 0; c < pool.chunk_count() && remaining > 0; ++c) {
      const std::size_t here = std::min(chunk_slots, remaining);
      std::memcpy(
          device_->HostView(base + c * chunk_slots * sizeof(Hot)),
          pool.primary_chunk(c), here * sizeof(Hot));
      remaining -= here;
    }
  }

  /// Streams a pool's dirty hot fragments to the device mirror, sorting
  /// the slots and coalescing adjacent runs (split at chunk boundaries,
  /// where host storage stops being contiguous) into single transfers.
  /// Returns the modelled transfer time; adds the slot count to `*nodes`.
  template <typename Pool>
  double CopyDirtySlots(const Pool& pool, gpu::DevicePtr base,
                        std::size_t* nodes) {
    std::vector<typename Pool::Index> slots = pool.dirty_slots();
    if (slots.empty()) return 0;
    std::sort(slots.begin(), slots.end());
    const std::size_t chunk_slots = pool.chunk_capacity();
    double t = 0;
    std::size_t i = 0;
    while (i < slots.size()) {
      std::size_t j = i + 1;
      while (j < slots.size() && slots[j] == slots[j - 1] + 1 &&
             slots[j] / chunk_slots == slots[i] / chunk_slots) {
        ++j;
      }
      const std::size_t run = j - i;
      t += transfer_->StreamedCopyToDevice(
          base + static_cast<std::uint64_t>(slots[i]) * sizeof(Hot),
          &pool.primary(slots[i]), run * sizeof(Hot));
      i = j;
    }
    *nodes += slots.size();
    return t;
  }

  Config config_;
  RegularBTree<K> host_tree_;
  gpu::Device* device_;
  gpu::TransferEngine* transfer_;
  gpu::DevicePtr device_inner_;
  gpu::DevicePtr device_last_;
  std::size_t inner_capacity_ = 0;
  std::size_t last_capacity_ = 0;
  std::atomic<std::uint64_t> sync_epoch_{0};
  std::atomic<bool> mirror_valid_{false};
  std::atomic<std::uint64_t> delta_syncs_{0};
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> delta_nodes_synced_{0};
};

}  // namespace hbtree

#endif  // HBTREE_HYBRID_HB_REGULAR_H_
