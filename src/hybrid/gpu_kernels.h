#ifndef HBTREE_HYBRID_GPU_KERNELS_H_
#define HBTREE_HYBRID_GPU_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/macros.h"
#include "core/types.h"
#include "cpubtree/node_layout.h"
#include "gpusim/device.h"
#include "gpusim/warp.h"

namespace hbtree {

/// GPU kernels of the HB+-tree (Section 5.3, Appendix D).
///
/// Both kernels implement the paper's parallel node search: a team of T
/// threads per query (T = 8 for 64-bit keys, 16 for 32-bit), each thread
/// comparing one key of the current node, with the team's winner found via
/// shared-memory flags — Snippet 3. They are written warp-synchronously
/// against the SIMT simulator: per-lane loops between accounting calls are
/// the lockstep execution a real warp performs, `Gather` coalesces the
/// team loads into 64-byte transactions, and `SharedAccess`/`Instruction`
/// charge the flag exchange and ALU work.
///
/// Both kernels support the load-balancing scheme (Section 5.5): queries
/// may carry a per-query start node produced by a partial CPU descent.

/// Launch parameters for the implicit-tree inner search.
template <typename K>
struct ImplicitKernelParams {
  gpu::DevicePtr nodes;  // ImplicitInnerNode<K>[], root-first by level
  /// Node offset of each level within `nodes` (host-side kernel constant,
  /// the levelOffsets array of Snippet 3), indexed by level (height..1).
  std::vector<std::uint64_t> level_offsets;
  /// Materialized node count per level (index 0 = leaf lines); child
  /// indices are clamped to it, mirroring the host-side descent.
  std::vector<std::uint64_t> level_alloc;
  int height = 0;       // inner levels in the tree
  int start_level = 0;  // first level the GPU searches (== height unless
                        // the CPU pre-descended, Section 5.5)
  int fanout = 0;       // == keys per node (hybrid layout)

  gpu::DevicePtr queries;      // K[count]
  gpu::DevicePtr start_nodes;  // uint32[count]; null -> all start at node 0
  gpu::DevicePtr results;      // uint64[count]: leaf line index
  std::uint32_t count = 0;
};

/// Runs the implicit inner-node search kernel; returns per-launch stats
/// for the kernel cost model. Functionally computes results in device
/// memory exactly as Snippet 3 would.
template <typename K>
gpu::KernelStats RunImplicitInnerSearch(gpu::Device& device,
                                        const ImplicitKernelParams<K>& p) {
  gpu::KernelStats stats;
  constexpr int kTeam = KeyTraits<K>::kPerCacheLine;  // threads per query
  const int teams_per_warp = gpu::WarpScope::kWarpSize / kTeam;

  for (std::uint32_t warp_base = 0; warp_base < p.count;
       warp_base += teams_per_warp) {
    const int teams =
        static_cast<int>(std::min<std::uint32_t>(teams_per_warp,
                                                 p.count - warp_base));
    const int lanes = teams * kTeam;
    gpu::WarpScope warp(&device, &stats, lanes);

    // Load this warp's queries (coalesced: consecutive keys).
    std::uint64_t offsets[gpu::WarpScope::kWarpSize];
    K team_query[gpu::WarpScope::kWarpSize];
    {
      std::uint64_t qoff[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) qoff[t] = (warp_base + t) * sizeof(K);
      warp.Gather(p.queries, qoff, teams, team_query);
    }

    // Starting node per team (32-bit indices on the wire).
    std::uint64_t node[gpu::WarpScope::kWarpSize];
    if (p.start_nodes.is_null()) {
      for (int t = 0; t < teams; ++t) node[t] = 0;
    } else {
      std::uint64_t soff[gpu::WarpScope::kWarpSize];
      std::uint32_t start32[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        soff[t] = (warp_base + t) * sizeof(std::uint32_t);
      }
      warp.Gather(p.start_nodes, soff, teams, start32);
      for (int t = 0; t < teams; ++t) node[t] = start32[t];
    }

    // Inner-node descent (Snippet 3).
    for (int level = p.start_level; level >= 1; --level) {
      // Each lane loads one key of its team's node: selfKey.
      K self_key[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t node_byte =
            (p.level_offsets[level] + node[t]) * kCacheLineSize;
        for (int lane = 0; lane < kTeam; ++lane) {
          offsets[t * kTeam + lane] = node_byte + lane * sizeof(K);
        }
      }
      warp.Gather(p.nodes, offsets, lanes, self_key);

      // flag[threadIdx] = (teamQuery <= selfKey); write + barrier + read
      // neighbour flag + conditional result write (Snippet 3 lines 13-24).
      warp.SharedAccessUniform(lanes);  // flag store
      warp.Instruction(2);              // compare + selfFlag
      warp.SharedAccessUniform(lanes);  // neighbour flag load
      warp.Instruction(2);              // transition test + result store
      warp.Instruction(2);              // __syncthreads x2 (warp-level)

      for (int t = 0; t < teams; ++t) {
        // result = the lane whose flag is 1 while its left neighbour's is
        // 0 == the number of keys smaller than the query.
        int result = 0;
        for (int lane = 0; lane < kTeam; ++lane) {
          if (self_key[t * kTeam + lane] < team_query[t]) ++result;
        }
        HBTREE_DCHECK(result < p.fanout);
        node[t] = node[t] * p.fanout + static_cast<std::uint64_t>(result);
        const std::uint64_t bound = p.level_alloc[level - 1];
        if (node[t] >= bound) node[t] = bound - 1;
      }
      warp.Instruction(1);  // the clamp
    }

    // Scatter leaf line indices (one lane per team writes; consecutive
    // 8-byte results coalesce into one transaction per warp).
    std::uint64_t roff[gpu::WarpScope::kWarpSize];
    for (int t = 0; t < teams; ++t) {
      roff[t] = (warp_base + t) * sizeof(std::uint64_t);
    }
    warp.Scatter(p.results, roff, teams, node);
  }
  return stats;
}

/// Level-wise variant of the implicit inner search (DESIGN.md §14).
///
/// Expects the launch's queries in sorted key order. Teams whose node at
/// the current level equals the previous team's node (a "run") reuse the
/// leader's node line from shared memory instead of re-issuing the global
/// gather — the batch loads each distinct node once per level, which is
/// the FPGA batch-search idea mapped onto warps. The compute side (flag
/// exchange, compare, clamp) is unchanged: every query is still resolved
/// individually. Run boundaries carry across warps, so the per-level node
/// loads equal the number of distinct start nodes in the whole launch.
template <typename K>
gpu::KernelStats RunImplicitInnerSearchLevelWise(
    gpu::Device& device, const ImplicitKernelParams<K>& p) {
  gpu::KernelStats stats;
  constexpr int kTeam = KeyTraits<K>::kPerCacheLine;
  const int teams_per_warp = gpu::WarpScope::kWarpSize / kTeam;
  if (p.count == 0) return stats;

  stats.node_loads_by_level.assign(p.start_level + 1, 0);
  stats.node_queries_by_level.assign(p.start_level + 1, 0);
  // Run-leader carry across warps: the node the previous team visited at
  // each level (sorted batches make equal-node runs consecutive).
  constexpr std::uint64_t kNone = ~0ull;
  std::vector<std::uint64_t> prev_node(p.start_level + 1, kNone);

  for (std::uint32_t warp_base = 0; warp_base < p.count;
       warp_base += teams_per_warp) {
    const int teams =
        static_cast<int>(std::min<std::uint32_t>(teams_per_warp,
                                                 p.count - warp_base));
    const int lanes = teams * kTeam;
    gpu::WarpScope warp(&device, &stats, lanes);

    K team_query[gpu::WarpScope::kWarpSize];
    {
      std::uint64_t qoff[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) qoff[t] = (warp_base + t) * sizeof(K);
      warp.Gather(p.queries, qoff, teams, team_query);
    }

    std::uint64_t node[gpu::WarpScope::kWarpSize];
    if (p.start_nodes.is_null()) {
      for (int t = 0; t < teams; ++t) node[t] = 0;
    } else {
      std::uint64_t soff[gpu::WarpScope::kWarpSize];
      std::uint32_t start32[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        soff[t] = (warp_base + t) * sizeof(std::uint32_t);
      }
      warp.Gather(p.start_nodes, soff, teams, start32);
      for (int t = 0; t < teams; ++t) node[t] = start32[t];
    }

    for (int level = p.start_level; level >= 1; --level) {
      // Run leaders issue the node-line gather; followers reuse it.
      std::uint64_t goff[gpu::WarpScope::kWarpSize];
      int gl = 0;
      int leaders = 0;
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t prev = t == 0 ? prev_node[level] : node[t - 1];
        if (node[t] != prev) {
          ++leaders;
          const std::uint64_t node_byte =
              (p.level_offsets[level] + node[t]) * kCacheLineSize;
          for (int lane = 0; lane < kTeam; ++lane) {
            goff[gl++] = node_byte + lane * sizeof(K);
          }
        }
      }
      prev_node[level] = node[teams - 1];
      if (gl > 0) warp.RecordAccess(p.nodes, goff, gl, sizeof(K));
      const int follower_lanes = lanes - gl;
      if (follower_lanes > 0) {
        warp.SharedAccessUniform(follower_lanes);  // leader-line broadcast
      }
      // Functional node read for every team (followers take the leader's
      // line from shared memory; the broadcast above is its charge).
      K self_key[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t node_byte =
            (p.level_offsets[level] + node[t]) * kCacheLineSize;
        std::memcpy(&self_key[t * kTeam],
                    device.HostView(p.nodes + node_byte), kTeam * sizeof(K));
      }

      // Flag exchange + result, identical to the per-query kernel: the
      // search itself still happens per query.
      warp.SharedAccessUniform(lanes);  // flag store
      warp.Instruction(2);              // compare + selfFlag
      warp.SharedAccessUniform(lanes);  // neighbour flag load
      warp.Instruction(2);              // transition test + result store
      warp.Instruction(2);              // __syncthreads x2 (warp-level)

      for (int t = 0; t < teams; ++t) {
        int result = 0;
        for (int lane = 0; lane < kTeam; ++lane) {
          if (self_key[t * kTeam + lane] < team_query[t]) ++result;
        }
        HBTREE_DCHECK(result < p.fanout);
        node[t] = node[t] * p.fanout + static_cast<std::uint64_t>(result);
        const std::uint64_t bound = p.level_alloc[level - 1];
        if (node[t] >= bound) node[t] = bound - 1;
      }
      warp.Instruction(1);  // the clamp

      stats.node_loads_by_level[level] += static_cast<std::uint64_t>(leaders);
      stats.node_queries_by_level[level] += static_cast<std::uint64_t>(teams);
    }

    std::uint64_t roff[gpu::WarpScope::kWarpSize];
    for (int t = 0; t < teams; ++t) {
      roff[t] = (warp_base + t) * sizeof(std::uint64_t);
    }
    warp.Scatter(p.results, roff, teams, node);
  }
  return stats;
}

/// Launch parameters for the regular-tree inner search.
template <typename K>
struct RegularKernelParams {
  gpu::DevicePtr inner_hot;  // RegularInnerHot<K>[] indexed by pool slot
  gpu::DevicePtr last_hot;   // RegularInnerHot<K>[] for the last level
  NodeRef root = kNullRef;
  int root_level = 0;   // levels counted down to 1 (last inner level)
  int start_level = 0;  // == root_level unless the CPU pre-descended

  gpu::DevicePtr queries;      // K[count]
  gpu::DevicePtr start_nodes;  // uint32[count]; null -> all start at root
  gpu::DevicePtr results;      // uint64[count]: (last_inner << 16) | line
  std::uint32_t count = 0;
};

/// Packs/unpacks the regular kernel's intermediate result.
inline std::uint64_t PackLeafPosition(NodeRef node, int line) {
  return (static_cast<std::uint64_t>(node) << 16) |
         static_cast<std::uint64_t>(line);
}
inline NodeRef UnpackLeafNode(std::uint64_t packed) {
  return static_cast<NodeRef>(packed >> 16);
}
inline int UnpackLeafLine(std::uint64_t packed) {
  return static_cast<int>(packed & 0xffff);
}

/// Runs the regular-tree inner search kernel: per level, the team searches
/// the index line, fetches and searches the selected key line, then one
/// lane fetches the child reference — "three memory accesses instead of
/// one" (Section 5.3).
template <typename K>
gpu::KernelStats RunRegularInnerSearch(gpu::Device& device,
                                       const RegularKernelParams<K>& p) {
  gpu::KernelStats stats;
  using Shape = RegularShape<K>;
  constexpr int kTeam = Shape::kIdx;  // 8 (64-bit) / 16 (32-bit)
  const int teams_per_warp = gpu::WarpScope::kWarpSize / kTeam;
  constexpr std::uint64_t kHotBytes = sizeof(RegularInnerHot<K>);
  constexpr std::uint64_t kKeysBase = Shape::kIdx * sizeof(K);
  constexpr std::uint64_t kRefsBase =
      kKeysBase + Shape::kFanout * sizeof(K);

  for (std::uint32_t warp_base = 0; warp_base < p.count;
       warp_base += teams_per_warp) {
    const int teams =
        static_cast<int>(std::min<std::uint32_t>(teams_per_warp,
                                                 p.count - warp_base));
    const int lanes = teams * kTeam;
    gpu::WarpScope warp(&device, &stats, lanes);

    K team_query[gpu::WarpScope::kWarpSize];
    {
      std::uint64_t qoff[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) qoff[t] = (warp_base + t) * sizeof(K);
      warp.Gather(p.queries, qoff, teams, team_query);
    }

    std::uint64_t node[gpu::WarpScope::kWarpSize];
    if (p.start_nodes.is_null()) {
      for (int t = 0; t < teams; ++t) node[t] = p.root;
    } else {
      std::uint64_t soff[gpu::WarpScope::kWarpSize];
      std::uint32_t start32[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        soff[t] = (warp_base + t) * sizeof(std::uint32_t);
      }
      warp.Gather(p.start_nodes, soff, teams, start32);
      for (int t = 0; t < teams; ++t) node[t] = start32[t];
    }

    std::uint64_t offsets[gpu::WarpScope::kWarpSize];
    K lane_key[gpu::WarpScope::kWarpSize];

    int line_result[gpu::WarpScope::kWarpSize];
    for (int level = p.start_level; level >= 1; --level) {
      const bool last = level == 1;
      const gpu::DevicePtr pool = last ? p.last_hot : p.inner_hot;

      // Step 1: parallel search of the index line.
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t base = node[t] * kHotBytes;
        for (int lane = 0; lane < kTeam; ++lane) {
          offsets[t * kTeam + lane] = base + lane * sizeof(K);
        }
      }
      warp.Gather(pool, offsets, lanes, lane_key);
      warp.SharedAccessUniform(lanes);
      warp.Instruction(4);
      warp.SharedAccessUniform(lanes);
      int s[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        int count_less = 0;
        for (int lane = 0; lane < kTeam; ++lane) {
          if (lane_key[t * kTeam + lane] < team_query[t]) ++count_less;
        }
        HBTREE_DCHECK(count_less < kTeam);
        s[t] = count_less;
      }

      // Step 2: fetch and search the selected key line.
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t base =
            node[t] * kHotBytes + kKeysBase +
            static_cast<std::uint64_t>(s[t]) * kTeam * sizeof(K);
        for (int lane = 0; lane < kTeam; ++lane) {
          offsets[t * kTeam + lane] = base + lane * sizeof(K);
        }
      }
      warp.Gather(pool, offsets, lanes, lane_key);
      warp.SharedAccessUniform(lanes);
      warp.Instruction(4);
      warp.SharedAccessUniform(lanes);
      for (int t = 0; t < teams; ++t) {
        int count_less = 0;
        for (int lane = 0; lane < kTeam; ++lane) {
          if (lane_key[t * kTeam + lane] < team_query[t]) ++count_less;
        }
        HBTREE_DCHECK(count_less < kTeam);
        line_result[t] = s[t] * kTeam + count_less;
      }

      if (last) break;

      // Step 3: one lane per team fetches the child reference.
      K child_ref[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        offsets[t] = node[t] * kHotBytes + kRefsBase +
                     static_cast<std::uint64_t>(line_result[t]) * sizeof(K);
      }
      warp.Gather(pool, offsets, teams, child_ref);
      warp.Instruction(1);
      for (int t = 0; t < teams; ++t) {
        node[t] = static_cast<std::uint64_t>(child_ref[t]);
      }
    }

    // Scatter packed (last inner node, leaf line) results.
    std::uint64_t packed[gpu::WarpScope::kWarpSize];
    std::uint64_t roff[gpu::WarpScope::kWarpSize];
    for (int t = 0; t < teams; ++t) {
      packed[t] = PackLeafPosition(static_cast<NodeRef>(node[t]),
                                   line_result[t]);
      roff[t] = (warp_base + t) * sizeof(std::uint64_t);
    }
    warp.Scatter(p.results, roff, teams, packed);
  }
  return stats;
}

/// Level-wise variant of the regular-tree inner search (DESIGN.md §14).
///
/// Same contract as RunImplicitInnerSearchLevelWise: the launch's queries
/// arrive sorted, so consecutive teams sharing a node form a run. The run
/// leader issues the global gathers (index line, key line, child ref);
/// followers take the lines from shared memory. Key-line and child-ref
/// gathers additionally dedupe on the selected line — queries of one run
/// that fall into the same key line share that fetch too. Per-level node
/// loads (the index-line leaders) equal the distinct start nodes of the
/// launch at that level.
template <typename K>
gpu::KernelStats RunRegularInnerSearchLevelWise(
    gpu::Device& device, const RegularKernelParams<K>& p) {
  gpu::KernelStats stats;
  using Shape = RegularShape<K>;
  constexpr int kTeam = Shape::kIdx;
  const int teams_per_warp = gpu::WarpScope::kWarpSize / kTeam;
  constexpr std::uint64_t kHotBytes = sizeof(RegularInnerHot<K>);
  constexpr std::uint64_t kKeysBase = Shape::kIdx * sizeof(K);
  constexpr std::uint64_t kRefsBase =
      kKeysBase + Shape::kFanout * sizeof(K);
  if (p.count == 0) return stats;

  stats.node_loads_by_level.assign(p.start_level + 1, 0);
  stats.node_queries_by_level.assign(p.start_level + 1, 0);
  // Cross-warp run carries: previous team's node, (node, key line) and
  // (node, result line) per level. Lines fit in 16 bits, so the packed
  // carries can never collide with the ~0 sentinel.
  constexpr std::uint64_t kNone = ~0ull;
  std::vector<std::uint64_t> prev_node(p.start_level + 1, kNone);
  std::vector<std::uint64_t> prev_kline(p.start_level + 1, kNone);
  std::vector<std::uint64_t> prev_rline(p.start_level + 1, kNone);

  for (std::uint32_t warp_base = 0; warp_base < p.count;
       warp_base += teams_per_warp) {
    const int teams =
        static_cast<int>(std::min<std::uint32_t>(teams_per_warp,
                                                 p.count - warp_base));
    const int lanes = teams * kTeam;
    gpu::WarpScope warp(&device, &stats, lanes);

    K team_query[gpu::WarpScope::kWarpSize];
    {
      std::uint64_t qoff[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) qoff[t] = (warp_base + t) * sizeof(K);
      warp.Gather(p.queries, qoff, teams, team_query);
    }

    std::uint64_t node[gpu::WarpScope::kWarpSize];
    if (p.start_nodes.is_null()) {
      for (int t = 0; t < teams; ++t) node[t] = p.root;
    } else {
      std::uint64_t soff[gpu::WarpScope::kWarpSize];
      std::uint32_t start32[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        soff[t] = (warp_base + t) * sizeof(std::uint32_t);
      }
      warp.Gather(p.start_nodes, soff, teams, start32);
      for (int t = 0; t < teams; ++t) node[t] = start32[t];
    }

    std::uint64_t goff[gpu::WarpScope::kWarpSize];
    K lane_key[gpu::WarpScope::kWarpSize];

    int line_result[gpu::WarpScope::kWarpSize];
    for (int level = p.start_level; level >= 1; --level) {
      const bool last = level == 1;
      const gpu::DevicePtr pool = last ? p.last_hot : p.inner_hot;

      // Step 1: index line — run leaders gather, followers broadcast.
      int gl = 0;
      int leaders = 0;
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t prev = t == 0 ? prev_node[level] : node[t - 1];
        if (node[t] != prev) {
          ++leaders;
          const std::uint64_t base = node[t] * kHotBytes;
          for (int lane = 0; lane < kTeam; ++lane) {
            goff[gl++] = base + lane * sizeof(K);
          }
        }
      }
      prev_node[level] = node[teams - 1];
      if (gl > 0) warp.RecordAccess(pool, goff, gl, sizeof(K));
      if (lanes - gl > 0) warp.SharedAccessUniform(lanes - gl);
      for (int t = 0; t < teams; ++t) {
        std::memcpy(&lane_key[t * kTeam],
                    device.HostView(pool + node[t] * kHotBytes),
                    kTeam * sizeof(K));
      }
      warp.SharedAccessUniform(lanes);
      warp.Instruction(4);
      warp.SharedAccessUniform(lanes);
      int s[gpu::WarpScope::kWarpSize];
      for (int t = 0; t < teams; ++t) {
        int count_less = 0;
        for (int lane = 0; lane < kTeam; ++lane) {
          if (lane_key[t * kTeam + lane] < team_query[t]) ++count_less;
        }
        HBTREE_DCHECK(count_less < kTeam);
        s[t] = count_less;
      }

      // Step 2: key line — dedupe on (node, selected line); sorted runs
      // make equal selections consecutive here too.
      gl = 0;
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t kline =
            (node[t] << 16) | static_cast<std::uint64_t>(s[t]);
        const std::uint64_t prev =
            t == 0 ? prev_kline[level]
                   : (node[t - 1] << 16) | static_cast<std::uint64_t>(s[t - 1]);
        if (kline != prev) {
          const std::uint64_t base =
              node[t] * kHotBytes + kKeysBase +
              static_cast<std::uint64_t>(s[t]) * kTeam * sizeof(K);
          for (int lane = 0; lane < kTeam; ++lane) {
            goff[gl++] = base + lane * sizeof(K);
          }
        }
      }
      prev_kline[level] = (node[teams - 1] << 16) |
                          static_cast<std::uint64_t>(s[teams - 1]);
      if (gl > 0) warp.RecordAccess(pool, goff, gl, sizeof(K));
      if (lanes - gl > 0) warp.SharedAccessUniform(lanes - gl);
      for (int t = 0; t < teams; ++t) {
        std::memcpy(&lane_key[t * kTeam],
                    device.HostView(pool + node[t] * kHotBytes + kKeysBase +
                                    static_cast<std::uint64_t>(s[t]) * kTeam *
                                        sizeof(K)),
                    kTeam * sizeof(K));
      }
      warp.SharedAccessUniform(lanes);
      warp.Instruction(4);
      warp.SharedAccessUniform(lanes);
      for (int t = 0; t < teams; ++t) {
        int count_less = 0;
        for (int lane = 0; lane < kTeam; ++lane) {
          if (lane_key[t * kTeam + lane] < team_query[t]) ++count_less;
        }
        HBTREE_DCHECK(count_less < kTeam);
        line_result[t] = s[t] * kTeam + count_less;
      }

      stats.node_loads_by_level[level] += static_cast<std::uint64_t>(leaders);
      stats.node_queries_by_level[level] += static_cast<std::uint64_t>(teams);

      if (last) break;

      // Step 3: child reference — dedupe on (node, result line).
      gl = 0;
      for (int t = 0; t < teams; ++t) {
        const std::uint64_t rline =
            (node[t] << 16) | static_cast<std::uint64_t>(line_result[t]);
        const std::uint64_t prev =
            t == 0 ? prev_rline[level]
                   : (node[t - 1] << 16) |
                         static_cast<std::uint64_t>(line_result[t - 1]);
        if (rline != prev) {
          goff[gl++] = node[t] * kHotBytes + kRefsBase +
                       static_cast<std::uint64_t>(line_result[t]) * sizeof(K);
        }
      }
      prev_rline[level] = (node[teams - 1] << 16) |
                          static_cast<std::uint64_t>(line_result[teams - 1]);
      if (gl > 0) warp.RecordAccess(pool, goff, gl, sizeof(K));
      if (teams - gl > 0) warp.SharedAccessUniform(teams - gl);
      warp.Instruction(1);
      for (int t = 0; t < teams; ++t) {
        K child_ref;
        std::memcpy(&child_ref,
                    device.HostView(pool + node[t] * kHotBytes + kRefsBase +
                                    static_cast<std::uint64_t>(line_result[t]) *
                                        sizeof(K)),
                    sizeof(K));
        node[t] = static_cast<std::uint64_t>(child_ref);
      }
    }

    std::uint64_t packed[gpu::WarpScope::kWarpSize];
    std::uint64_t roff[gpu::WarpScope::kWarpSize];
    for (int t = 0; t < teams; ++t) {
      packed[t] = PackLeafPosition(static_cast<NodeRef>(node[t]),
                                   line_result[t]);
      roff[t] = (warp_base + t) * sizeof(std::uint64_t);
    }
    warp.Scatter(p.results, roff, teams, packed);
  }
  return stats;
}

}  // namespace hbtree

#endif  // HBTREE_HYBRID_GPU_KERNELS_H_
