#include "hybrid/batch_update.h"

namespace hbtree {

const char* UpdateMethodName(UpdateMethod m) {
  switch (m) {
    case UpdateMethod::kAsyncSingleThread:
      return "async-1t";
    case UpdateMethod::kAsyncParallel:
      return "async-parallel";
    case UpdateMethod::kSynchronized:
      return "synchronized";
  }
  return "unknown";
}

}  // namespace hbtree
