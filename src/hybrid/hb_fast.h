#ifndef HBTREE_HYBRID_HB_FAST_H_
#define HBTREE_HYBRID_HB_FAST_H_

#include <cstdint>
#include <vector>

#include "core/macros.h"
#include "core/types.h"
#include "fast/fast_tree.h"
#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "mem/page_allocator.h"

namespace hbtree {

/// HB-FAST: the paper's future-work direction #2 realized — "a general
/// framework which enables the use of a CPU-GPU hybrid platform for any
/// arbitrary leaf-stored tree structure" (Section 7).
///
/// FAST is such a structure: its blocked separator array is the inner
/// part (mirrored to the GPU), the sorted pair array is the leaf part
/// (CPU memory). Plugging it into the same bucket pipeline as the
/// HB+-trees takes one adapter (see bucket_pipeline.h), which is the
/// framework claim made concrete.
///
/// It also doubles as an ablation: FAST's one-thread-per-query descent
/// cannot coalesce its block loads the way the HB+-tree's team search
/// does, so a warp issues up to 32 memory transactions per level instead
/// of ~4 — measured head-to-head in bench/ext_hb_fast.

/// Launch parameters for the blocked binary-search kernel.
template <typename K>
struct FastKernelParams {
  gpu::DevicePtr blocks;  // the blocked separator array
  int block_levels = 0;
  int start_block_level = 0;  // 0 unless the CPU pre-descended
  /// Base block offset of each block level (host-side kernel constant).
  std::vector<std::uint64_t> level_bases;

  gpu::DevicePtr queries;      // K[count]
  gpu::DevicePtr start_nodes;  // uint32 block indices; null -> root block
  gpu::DevicePtr results;      // uint64[count]: lower-bound position
  std::uint32_t count = 0;
};

/// Runs the FAST descent on the device: one thread per query (FAST's
/// search is inherently scalar), 32 queries per warp. Functionally
/// identical to FastTree::LowerBoundIndex.
template <typename K>
gpu::KernelStats RunFastSearch(gpu::Device& device,
                               const FastKernelParams<K>& p) {
  gpu::KernelStats stats;
  constexpr int kWarp = gpu::WarpScope::kWarpSize;
  constexpr int kBlockDepth = FastTree<K>::kBlockDepth;
  constexpr int kBlockSlots = FastTree<K>::kBlockSlots;

  for (std::uint32_t warp_base = 0; warp_base < p.count; warp_base += kWarp) {
    const int lanes = static_cast<int>(
        std::min<std::uint32_t>(kWarp, p.count - warp_base));
    gpu::WarpScope warp(&device, &stats, lanes);

    K query[kWarp];
    std::uint64_t offsets[kWarp];
    {
      std::uint64_t qoff[kWarp];
      for (int lane = 0; lane < lanes; ++lane) {
        qoff[lane] = (warp_base + lane) * sizeof(K);
      }
      warp.Gather(p.queries, qoff, lanes, query);
    }

    // The block index at a level equals the leaf-path prefix, so one
    // register carries both.
    std::uint64_t block[kWarp];
    if (p.start_nodes.is_null()) {
      for (int lane = 0; lane < lanes; ++lane) block[lane] = 0;
    } else {
      std::uint32_t start32[kWarp];
      std::uint64_t soff[kWarp];
      for (int lane = 0; lane < lanes; ++lane) {
        soff[lane] = (warp_base + lane) * sizeof(std::uint32_t);
      }
      warp.Gather(p.start_nodes, soff, lanes, start32);
      for (int lane = 0; lane < lanes; ++lane) block[lane] = start32[lane];
    }

    for (int bl = p.start_block_level; bl < p.block_levels; ++bl) {
      // Each lane loads its own 64-byte block line: no team cooperation,
      // so up to `lanes` distinct transactions per level.
      for (int lane = 0; lane < lanes; ++lane) {
        offsets[lane] =
            (p.level_bases[bl] + block[lane]) * kCacheLineSize;
      }
      K first_slot[kWarp];
      warp.Gather(p.blocks, offsets, lanes, first_slot);  // accounting
      warp.Instruction(2 * kBlockDepth);  // compares + index updates
      for (int lane = 0; lane < lanes; ++lane) {
        const K* line = device.HostViewAs<K>(p.blocks + offsets[lane]);
        unsigned in_block = 0;
        for (int d = 0; d < kBlockDepth; ++d) {
          const K sep = line[(1u << d) - 1 + in_block];
          in_block = 2 * in_block + (sep < query[lane] ? 1 : 0);
        }
        block[lane] =
            (block[lane] << kBlockDepth) | in_block;
      }
      (void)first_slot;
      (void)kBlockSlots;
    }

    std::uint64_t roff[kWarp];
    for (int lane = 0; lane < lanes; ++lane) {
      roff[lane] = (warp_base + lane) * sizeof(std::uint64_t);
    }
    warp.Scatter(p.results, roff, lanes, block);
  }
  return stats;
}

/// FAST hybridized over the CPU-GPU platform: blocked separators in
/// device memory, the sorted pair array in host memory.
template <typename K>
class HBFastTree {
 public:
  struct Config {
    typename FastTree<K>::Config tree;
  };

  HBFastTree(const Config& config, PageRegistry* registry,
             gpu::Device* device, gpu::TransferEngine* transfer)
      : host_tree_(config.tree, registry),
        device_(device),
        transfer_(transfer) {
    HBTREE_CHECK(device != nullptr && transfer != nullptr);
  }

  ~HBFastTree() {
    if (!device_blocks_.is_null()) device_->Free(device_blocks_);
  }

  HBFastTree(const HBFastTree&) = delete;
  HBFastTree& operator=(const HBFastTree&) = delete;

  /// Builds the host tree and mirrors the separator blocks. Returns false
  /// if they do not fit into device memory.
  bool Build(const std::vector<KeyValue<K>>& sorted_pairs) {
    host_tree_.Build(sorted_pairs);
    if (!device_blocks_.is_null()) {
      device_->Free(device_blocks_);
      device_blocks_ = gpu::DevicePtr{};
    }
    device_blocks_ = device_->TryMalloc(host_tree_.tree_bytes());
    if (device_blocks_.is_null()) return false;
    transfer_->CopyToDevice(device_blocks_, host_tree_.tree_data(),
                            host_tree_.tree_bytes());
    return true;
  }

  FastKernelParams<K> MakeKernelParams(
      gpu::DevicePtr queries, gpu::DevicePtr results, std::uint32_t count,
      int start_level = -1,
      gpu::DevicePtr start_nodes = gpu::DevicePtr{}) const {
    HBTREE_CHECK(!device_blocks_.is_null());
    FastKernelParams<K> params;
    params.blocks = device_blocks_;
    params.block_levels = host_tree_.block_levels();
    // The pipeline counts levels downward from `height`; FAST's kernel
    // counts block levels upward from the root.
    params.start_block_level =
        start_level < 0 ? 0 : host_tree_.block_levels() - start_level;
    params.level_bases.assign(host_tree_.block_levels(), 0);
    std::uint64_t base = 0, blocks_at = 1;
    for (int bl = 0; bl < host_tree_.block_levels(); ++bl) {
      params.level_bases[bl] = base;
      base += blocks_at;
      blocks_at *= FastTree<K>::kBlockFanout;
    }
    params.queries = queries;
    params.start_nodes = start_nodes;
    params.results = results;
    params.count = count;
    return params;
  }

  const FastTree<K>& host_tree() const { return host_tree_; }
  FastTree<K>& host_tree() { return host_tree_; }
  gpu::Device& device() { return *device_; }
  gpu::TransferEngine& transfer() { return *transfer_; }

 private:
  FastTree<K> host_tree_;
  gpu::Device* device_;
  gpu::TransferEngine* transfer_;
  gpu::DevicePtr device_blocks_;
};

}  // namespace hbtree

#endif  // HBTREE_HYBRID_HB_FAST_H_
