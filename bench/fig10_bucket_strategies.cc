// Figure 10 (Section 6.3): bucket handling strategies.
//
// Sequential, pipelined, and double-buffered bucket execution on the
// HB+-tree (implicit and regular). Expected: pipelining helps the
// implicit tree by ~56% and the regular tree by ~20%; double buffering
// lifts both to ~110% over sequential — i.e. CPU and GPU genuinely work
// concurrently.

#include <cstdio>

#include "bench_support/hb_runner.h"

namespace hbtree::bench {
namespace {

template <typename Bench, typename K>
void RunTree(const char* name, SimPlatform* sim,
             const std::vector<KeyValue<K>>& data,
             const std::vector<K>& queries) {
  Bench bench(sim, data, queries);
  Table table({"tree", "strategy", "MQPS", "vs sequential", "latency us"});
  table.PrintTitle(std::string(name) +
                   " HB+-tree bucket strategies (paper Fig. 10)");
  table.PrintHeader();
  double baseline = 0;
  for (BucketStrategy strategy :
       {BucketStrategy::kSequential, BucketStrategy::kPipelined,
        BucketStrategy::kDoubleBuffered}) {
    PipelineStats stats = bench.Run(queries, bench.MakeConfig(strategy));
    if (baseline == 0) baseline = stats.mqps;
    table.PrintRow({name, BucketStrategyName(strategy),
                    Table::Num(stats.mqps, 1),
                    Table::Num(stats.mqps / baseline, 2) + "x",
                    Table::Num(stats.avg_latency_us, 1)});
  }
}

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 20);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);
  auto queries = MakeLookupQueries(data, seed + 1);
  queries.resize(std::min(q, queries.size()));

  {
    SimPlatform sim(platform);
    RunTree<HbImplicitBench<Key64>, Key64>("implicit", &sim, data, queries);
  }
  {
    SimPlatform sim(platform);
    RunTree<HbRegularBench<Key64>, Key64>("regular", &sim, data, queries);
  }
  std::printf(
      "\nPaper expectation: pipelining +56%% (implicit) / +20%% (regular); "
      "double buffering ~+110%% over sequential for both.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
