// Figure 12 (Section 6.3): impact of skewed query distributions.
//
// HB+-tree search throughput for Uniform, Normal(0.5, 0.125),
// Gamma(3, 3) and Zipf(2) query streams, normalized to Uniform.
// Expected: Normal/Gamma within ~1.1X of Uniform; Zipf up to ~2.2X —
// skew concentrates accesses, raising hit rates in the CPU caches (leaf
// lines) and the GPU L2 (inner nodes).

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "core/distributions.h"

namespace hbtree::bench {
namespace {

template <typename Bench>
void RunTree(const char* name, const sim::PlatformSpec& platform,
             const std::vector<KeyValue<Key64>>& data, std::size_t q,
             std::uint64_t seed, Table& table) {
  double uniform_mqps = 0;
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kNormal, Distribution::kGamma,
        Distribution::kZipf}) {
    auto queries = MakeDistributedQueries<Key64>(q, distribution, seed + 7);
    // Fresh device per distribution so L2 state is comparable.
    SimPlatform sim(platform);
    Bench bench(&sim, data, queries);
    PipelineStats stats = bench.Run(queries, bench.MakeConfig());
    if (distribution == Distribution::kUniform) uniform_mqps = stats.mqps;
    table.PrintRow({name, DistributionName(distribution),
                    Table::Num(stats.mqps, 1),
                    Table::Num(stats.mqps / uniform_mqps, 2) + "x"});
  }
}

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 20);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);

  Table table({"tree", "distribution", "MQPS", "vs uniform"});
  table.PrintTitle("query distributions (paper Fig. 12)");
  table.PrintHeader();
  RunTree<HbImplicitBench<Key64>>("implicit", platform, data, q, seed,
                                  table);
  RunTree<HbRegularBench<Key64>>("regular", platform, data, q, seed, table);
  std::printf(
      "\nPaper expectation: Normal/Gamma within 1.1x of Uniform; Zipf up "
      "to 2.2x faster.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
