// Extension (paper Section 7, future work #2): the leaf-stored-tree
// hybridization framework, demonstrated by plugging FAST into the same
// CPU-GPU bucket pipeline as the HB+-trees — and an ablation of why the
// HB+-tree's team search is the better GPU citizen.
//
// HB-FAST mirrors FAST's blocked separator array into device memory and
// finishes lookups on the CPU's sorted pair array. Its descent is one
// thread per query, so a warp's 32 block loads hit up to 32 distinct
// 64-byte segments per level; the HB+-tree's 8-thread team search loads
// at most 4 segments per warp per level. Same pipeline, same platform —
// the transaction counts and throughput below quantify the difference.

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "hybrid/hb_fast.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 19);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);
  auto queries = MakeLookupQueries(data, seed + 1);
  queries.resize(std::min(q, queries.size()));

  Table table({"tree", "MQPS", "tx/warp/level", "gpu dram MB", "t2 us"});
  table.PrintTitle("framework extension: HB+-tree vs HB-FAST");
  table.PrintHeader();

  {
    SimPlatform sim(platform);
    HbImplicitBench<Key64> bench(&sim, data, queries);
    PipelineStats stats = bench.Run(queries, bench.MakeConfig());
    const double txwl =
        static_cast<double>(stats.kernel.memory_transactions) /
        stats.kernel.warps_executed /
        bench.tree().host_tree().height();
    table.PrintRow({"hb-implicit", Table::Num(stats.mqps, 1),
                    Table::Num(txwl, 2),
                    Table::Num(stats.kernel.dram_bytes / 1e6, 1),
                    Table::Num(stats.t2_us, 1)});
  }
  {
    SimPlatform sim(platform);
    PageRegistry registry;
    HBFastTree<Key64>::Config config;
    HBFastTree<Key64> tree(config, &registry, &sim.device, &sim.transfer);
    HBTREE_CHECK(tree.Build(data));
    // The CPU's share: one pair-array access per query.
    PipelineConfig pconfig;
    pconfig.cpu_queries_per_us = 200;  // comparable leaf step to the HB+-tree
    PipelineStats stats = RunSearchPipeline(tree, queries.data(),
                                            queries.size(), pconfig);
    const double txwl =
        static_cast<double>(stats.kernel.memory_transactions) /
        stats.kernel.warps_executed / tree.host_tree().block_levels();
    table.PrintRow({"hb-fast", Table::Num(stats.mqps, 1),
                    Table::Num(txwl, 2),
                    Table::Num(stats.kernel.dram_bytes / 1e6, 1),
                    Table::Num(stats.t2_us, 1)});
  }
  std::printf(
      "\nExpectation: both are functionally correct through the same "
      "pipeline; HB-FAST's uncoalesced per-thread descent issues several "
      "times more memory transactions per warp-level, inflating its GPU "
      "stage.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
