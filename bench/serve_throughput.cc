// Serving-layer throughput/latency bench: N client threads submit point
// lookups against the serving front-end (src/serve/) while a separate
// client streams batch updates, exercising the epoch-swapped snapshot
// path — lookups keep completing while update batches commit, the
// paper's asynchronous update model (Section 5.6) as a live service.
//
// Sweeps the serving topology: each row runs the same total load against
// a server with a different (num_shards, num_read_workers) pair, so the
// table shows what key-range sharding and concurrent dispatchers buy at
// equal work. `vs_baseline` is wall-clock aggregate (lookup + update)
// throughput relative to the first row; `modelled_vs_baseline` is the
// same ratio on modelled serving capacity (total ops over the busiest
// shard's modelled busy time) — the paper-platform number, free of this
// host's core count. Sharding multiplies modelled capacity because the
// shards' devices are independent; wall throughput on a small host mostly
// shows the per-op serving overhead.
//
// Prints per-op wall-clock p50/p99 latency, sustained throughput, and
// the overlap evidence: how many read buckets completed strictly between
// the first and last update commit. Also writes the canonical serving
// baseline BENCH_serve.json (schema hbtree.bench.v1 with the last run's
// metrics registry embedded plus a "stages" waterfall — where the last
// run's time went per pipeline stage) — override the path with
// --metrics_json.
//
// Every run records its own trace session (tracing is compiled into
// this binary), so tail-latency exemplars and the stage waterfall work
// without flags; --trace_out additionally exports the last run's
// session as Chrome trace JSON, matching the embedded metrics snapshot.
//
// Flags: --n_log2 (tree size), --clients (lookup threads), --lookups
// (per client), --updates (total update stream), --bucket_log2,
// --pipeline_async (ops in flight per client), --shards (fixed shard
// count; 0 sweeps the topology grid (1,1), (1,--read_workers), (4,1),
// (4,--read_workers)), --read_workers (dispatchers per shard),
// --platform, --seed, --metrics_json (output path), --trace_out (Chrome
// trace JSON of the last run).

#include <cstdio>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/report.h"
#include "bench_support/seeds.h"
#include "bench_support/serve_runner.h"
#include "bench_support/table.h"
#include "core/workload.h"
#include "obs/span_aggregator.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace hbtree::bench {
namespace {

struct RunResult {
  serve::ServeStats stats;
  std::uint64_t overlapped_buckets = 0;
  double hit_rate = 0;
  obs::MetricsSnapshot metrics;
  obs::StageWaterfall stages;
  obs::HeatSection heat;
};

/// Runs the whole client workload against one server configuration.
/// Returns false (with a clear error on stderr) if the server cannot be
/// built — misconfigured shard/worker counts must fail loudly, not limp
/// through a degenerate run.
bool RunOne(const serve::ServerOptions& options,
            const std::vector<KeyValue<Key64>>& data,
            const std::vector<Key64>& queries,
            const std::vector<UpdateQuery<Key64>>& updates, int clients,
            std::size_t lookups_per_client, std::size_t in_flight,
            RunResult* out) {
  // Each run is its own trace session: the dispatch spans feed the tail-
  // latency exemplars and the stage waterfall even when no trace file is
  // requested. Start() clears the previous run's events, so whatever the
  // caller exports afterwards covers the last run only — consistent with
  // the last-run metrics snapshot the report embeds.
  obs::TraceSession::Start();
  Status create_status;
  auto server_ptr = serve::Server<Key64>::Create(options, data, &create_status);
  if (server_ptr == nullptr) {
    std::fprintf(stderr,
                 "server creation failed (shards=%d, read_workers=%d): %s\n",
                 options.num_shards, options.num_read_workers,
                 create_status.message().c_str());
    return false;
  }
  serve::Server<Key64>& server = *server_ptr;

  std::atomic<std::uint64_t> buckets_before_first_commit{0};
  std::atomic<std::uint64_t> buckets_after_last_commit{0};

  // Update client: streams the whole update workload through the server
  // in submission windows, recording the commit span.
  std::thread update_client([&] {
    std::vector<std::future<serve::UpdateResult>> pending;
    pending.reserve(updates.size());
    buckets_before_first_commit.store(server.Stats().read_buckets);
    for (const auto& update : updates) {
      pending.push_back(server.SubmitUpdate(update));
    }
    for (auto& f : pending) f.get();
    buckets_after_last_commit.store(server.Stats().read_buckets);
  });

  // Lookup clients: each keeps up to `in_flight` async lookups
  // outstanding and harvests the oldest half-window when full, so the
  // admission stream never goes fully silent while a bucket is in flight
  // (per-op harvesting costs a wakeup per future; full-window harvesting
  // starves the queues between windows).
  std::vector<std::thread> lookup_clients;
  std::atomic<std::uint64_t> hits{0};
  for (int c = 0; c < clients; ++c) {
    lookup_clients.emplace_back([&, c] {
      std::deque<std::future<serve::ReadResult<Key64>>> window;
      const std::size_t harvest = std::max<std::size_t>(1, in_flight / 2);
      std::uint64_t local_hits = 0;
      for (std::size_t i = 0; i < lookups_per_client; ++i) {
        if (window.size() >= in_flight) {
          for (std::size_t h = 0; h < harvest; ++h) {
            local_hits += window.front().get().lookup.found;
            window.pop_front();
          }
        }
        window.push_back(server.SubmitLookup(
            queries[(c * lookups_per_client + i) % queries.size()]));
      }
      for (auto& f : window) local_hits += f.get().lookup.found;
      hits.fetch_add(local_hits);
    });
  }

  for (auto& t : lookup_clients) t.join();
  update_client.join();

  // Shutdown first: its final CollectWindow() flush feeds the SLO
  // tracker, so Stats() below reports burn rates covering the whole run.
  server.Shutdown();
  obs::TraceSession::Stop();

  out->stats = server.Stats();
  out->overlapped_buckets =
      buckets_after_last_commit.load() - buckets_before_first_commit.load();
  out->hit_rate = static_cast<double>(hits.load()) /
                  (static_cast<double>(clients) * lookups_per_client);
  out->metrics = server.metrics().Collect();
  out->stages = obs::SpanAggregator::FromSession();
  out->heat = server.Heat();
  return true;
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  args.PrintActive();
  const sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1}
                        << args.GetInt("n_log2", 20);
  const int clients = static_cast<int>(args.GetInt("clients", 4));
  const std::size_t lookups_per_client =
      static_cast<std::size_t>(args.GetInt("lookups", 64 * 1024));
  const std::size_t total_updates =
      static_cast<std::size_t>(args.GetInt("updates", 48 * 1024));
  const int bucket = 1 << args.GetInt("bucket_log2", 14);
  const std::size_t in_flight =
      static_cast<std::size_t>(args.GetInt("pipeline_async", 4096));
  const SeedPlan seeds(static_cast<std::uint64_t>(args.GetInt("seed", 1)));
  const int fixed_shards = static_cast<int>(args.GetInt("shards", 0));
  const int read_workers = static_cast<int>(args.GetInt("read_workers", 2));

  std::printf("building %zu-key tree and calibrating on %s...\n", n,
              platform.name.c_str());
  auto data = GenerateDataset<Key64>(n, seeds.dataset);
  serve::ServerOptions base_options =
      CalibratedServerOptions(platform, data, seeds.calibrate, bucket);
  base_options.pipeline_depth =
      static_cast<int>(args.GetInt("pipeline_depth", 4));

  auto queries = MakeLookupQueries(data, seeds.queries);
  auto updates = MakeUpdateBatch(data, total_updates,
                                 /*insert_fraction=*/0.7, seeds.updates);

  std::vector<std::pair<int, int>> sweep;  // (shards, read_workers)
  if (fixed_shards > 0) {
    sweep.emplace_back(fixed_shards, read_workers);
  } else {
    // Row 1 is the pre-sharding topology (one shard, one dispatcher) so
    // vs_baseline / modelled_vs_baseline read as "what the PR bought".
    sweep.emplace_back(1, 1);
    sweep.emplace_back(1, read_workers);
    sweep.emplace_back(4, 1);
    sweep.emplace_back(4, read_workers);
  }

  BenchReport report("serve_throughput");
  report.Meta("platform", platform.name);
  report.MetaNum("n", static_cast<double>(n));
  report.MetaNum("clients", clients);
  report.MetaNum("lookups_per_client", static_cast<double>(lookups_per_client));
  report.MetaNum("updates", static_cast<double>(total_updates));
  report.MetaNum("bucket", bucket);
  seeds.Record(report);

  RunResult last;
  double baseline_agg = 0;
  double baseline_modelled = 0;
  for (const auto& [shards, workers] : sweep) {
    serve::ServerOptions options = base_options;
    options.num_shards = shards;
    options.num_read_workers = workers;
    std::printf("-- shards=%d read_workers=%d --\n", shards, workers);
    RunResult result;
    if (!RunOne(options, data, queries, updates, clients, lookups_per_client,
                in_flight, &result)) {
      return 1;
    }
    std::printf("%s\n", result.stats.ToString().c_str());
    std::printf(
        "overlap: %llu read buckets completed during the update stream's "
        "commit span (%llu batches)\n",
        static_cast<unsigned long long>(result.overlapped_buckets),
        static_cast<unsigned long long>(result.stats.update_batches));
    std::printf("lookup hit rate: %.3f (starts at 1.0; drops only as the "
                "stream's deletes commit)\n",
                result.hit_rate);

    const double agg = result.stats.reads_per_second +
                       result.stats.updates_per_second;
    const double modelled = result.stats.modelled_ops_per_second;
    if (baseline_agg == 0) baseline_agg = agg;
    if (baseline_modelled == 0) baseline_modelled = modelled;
    BenchReport::Row& row = report.AddRow();
    report.AddServeStatsRow(row, result.stats);
    row.Num("overlapped_buckets",
            static_cast<double>(result.overlapped_buckets), 0)
        .Num("update_batches",
             static_cast<double>(result.stats.update_batches), 0)
        .Num("hit_rate", result.hit_rate, 3)
        .Num("vs_baseline", baseline_agg > 0 ? agg / baseline_agg : 0, 2)
        .Num("modelled_vs_baseline",
             baseline_modelled > 0 ? modelled / baseline_modelled : 0, 2);
    last = std::move(result);
  }

  MaybeWriteTrace(args);  // last run's session; RunOne already stopped it
  report.SetStages(last.stages);
  report.SetHeat(last.heat);
  report.PrintTable("serving throughput (canonical columns)");
  const std::string json_path =
      args.GetString("metrics_json", "BENCH_serve.json");
  if (!report.WriteJson(json_path, &last.metrics)) return 1;
  return 0;
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) { return hbtree::bench::Main(argc, argv); }
