// Serving-layer throughput/latency bench: N client threads submit point
// lookups against the serving front-end (src/serve/) while a separate
// client streams batch updates, exercising the epoch-swapped snapshot
// path — lookups keep completing while update batches commit, the
// paper's asynchronous update model (Section 5.6) as a live service.
//
// Prints per-op wall-clock p50/p99 latency, sustained throughput, and
// the overlap evidence: how many read buckets completed strictly between
// the first and last update commit. Also writes the canonical serving
// baseline BENCH_serve.json (schema hbtree.bench.v1 with the server's
// metrics registry embedded) — override the path with --metrics_json.
//
// Flags: --n_log2 (tree size), --clients (lookup threads), --lookups
// (per client), --updates (total update stream), --bucket_log2,
// --pipeline_async (ops in flight per client), --platform, --seed,
// --metrics_json (output path), --trace_out (Chrome trace JSON).

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/report.h"
#include "bench_support/serve_runner.h"
#include "bench_support/table.h"
#include "core/workload.h"
#include "serve/server.h"

namespace hbtree::bench {
namespace {

int Main(int argc, char** argv) {
  Args args(argc, argv);
  args.PrintActive();
  const sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1}
                        << args.GetInt("n_log2", 20);
  const int clients = static_cast<int>(args.GetInt("clients", 4));
  const std::size_t lookups_per_client =
      static_cast<std::size_t>(args.GetInt("lookups", 64 * 1024));
  const std::size_t total_updates =
      static_cast<std::size_t>(args.GetInt("updates", 48 * 1024));
  const int bucket = 1 << args.GetInt("bucket_log2", 14);
  const std::size_t in_flight =
      static_cast<std::size_t>(args.GetInt("pipeline_async", 1024));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 1));

  std::printf("building %zu-key tree and calibrating on %s...\n", n,
              platform.name.c_str());
  auto data = GenerateDataset<Key64>(n, seed);
  serve::ServerOptions options =
      CalibratedServerOptions(platform, data, seed + 1, bucket);
  options.pipeline_depth =
      static_cast<int>(args.GetInt("pipeline_depth", 4));
  Status create_status;
  auto server_ptr = serve::Server<Key64>::Create(options, data, &create_status);
  if (server_ptr == nullptr) {
    std::fprintf(stderr, "server creation failed: %s\n",
                 create_status.message().c_str());
    return 1;
  }
  serve::Server<Key64>& server = *server_ptr;
  MaybeStartTrace(args);

  auto queries = MakeLookupQueries(data, seed + 2);
  auto updates = MakeUpdateBatch(data, total_updates,
                                 /*insert_fraction=*/0.7, seed + 3);

  std::atomic<std::uint64_t> buckets_before_first_commit{0};
  std::atomic<std::uint64_t> buckets_after_last_commit{0};

  // Update client: streams the whole update workload through the server
  // in submission windows, recording the commit span.
  std::thread update_client([&] {
    std::vector<std::future<serve::UpdateResult>> pending;
    pending.reserve(updates.size());
    buckets_before_first_commit.store(server.Stats().read_buckets);
    for (const auto& update : updates) {
      pending.push_back(server.SubmitUpdate(update));
    }
    for (auto& f : pending) f.get();
    buckets_after_last_commit.store(server.Stats().read_buckets);
  });

  // Lookup clients: each keeps `in_flight` async lookups outstanding so
  // admission buckets fill to pipeline size.
  std::vector<std::thread> lookup_clients;
  std::atomic<std::uint64_t> hits{0};
  for (int c = 0; c < clients; ++c) {
    lookup_clients.emplace_back([&, c] {
      std::vector<std::future<serve::ReadResult<Key64>>> window;
      window.reserve(in_flight);
      std::uint64_t local_hits = 0;
      for (std::size_t i = 0; i < lookups_per_client; ++i) {
        window.push_back(server.SubmitLookup(
            queries[(c * lookups_per_client + i) % queries.size()]));
        if (window.size() == in_flight) {
          for (auto& f : window) local_hits += f.get().lookup.found;
          window.clear();
        }
      }
      for (auto& f : window) local_hits += f.get().lookup.found;
      hits.fetch_add(local_hits);
    });
  }

  for (auto& t : lookup_clients) t.join();
  update_client.join();

  serve::ServeStats stats = server.Stats();
  server.Shutdown();
  MaybeWriteTrace(args);

  std::printf("%s\n", stats.ToString().c_str());
  const std::uint64_t overlapped =
      buckets_after_last_commit.load() - buckets_before_first_commit.load();
  std::printf(
      "overlap: %llu read buckets completed during the update stream's "
      "commit span (%llu batches)\n",
      static_cast<unsigned long long>(overlapped),
      static_cast<unsigned long long>(stats.update_batches));
  const double hit_rate = static_cast<double>(hits.load()) /
                          (static_cast<double>(clients) * lookups_per_client);
  std::printf("lookup hit rate: %.3f (starts at 1.0; drops only as the "
              "stream's deletes commit)\n",
              hit_rate);

  // Canonical serving baseline: one row through the shared reporter, the
  // server's whole metrics registry embedded.
  BenchReport report("serve_throughput");
  report.Meta("platform", platform.name);
  report.MetaNum("n", static_cast<double>(n));
  report.MetaNum("clients", clients);
  report.MetaNum("lookups_per_client", static_cast<double>(lookups_per_client));
  report.MetaNum("updates", static_cast<double>(total_updates));
  report.MetaNum("bucket", bucket);
  report.MetaNum("seed", static_cast<double>(seed));
  BenchReport::Row& row = report.AddRow();
  report.AddServeStatsRow(row, stats);
  row.Num("overlapped_buckets", static_cast<double>(overlapped), 0)
      .Num("update_batches", static_cast<double>(stats.update_batches), 0)
      .Num("hit_rate", hit_rate, 3);
  report.PrintTable("serving throughput (canonical columns)");
  const obs::MetricsSnapshot snapshot = server.metrics().Collect();
  const std::string json_path =
      args.GetString("metrics_json", "BENCH_serve.json");
  if (!report.WriteJson(json_path, &snapshot)) return 1;
  return 0;
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) { return hbtree::bench::Main(argc, argv); }
