// Microbenchmark (real wall clock, google-benchmark): Algorithm 2 —
// software-pipelined batch lookup on the implicit tree, sweeping the
// pipeline depth. The real-hardware analogue of Figure 20's trend on this
// host: deeper pipelines hide more miss latency until the core's MLP
// saturates.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/workload.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/pipelined_search.h"

namespace hbtree {
namespace {

void BM_PipelinedImplicitSearch(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const std::size_t n = 1 << 20;
  static PageRegistry registry;
  static ImplicitBTree<Key64>* tree = [] {
    static ImplicitBTree<Key64>::Config config;
    static ImplicitBTree<Key64> t(config, &registry);
    t.Build(GenerateDataset<Key64>(1 << 20, 42));
    return &t;
  }();
  auto queries = MakeDistributedQueries<Key64>(1 << 14,
                                               Distribution::kUniform, 43);
  std::vector<LookupResult<Key64>> results(queries.size());
  for (auto _ : state) {
    PipelinedSearch(*tree, queries.data(), queries.size(), depth,
                    results.data());
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
  (void)n;
}
BENCHMARK(BM_PipelinedImplicitSearch)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PipelinedRegularSearch(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  static PageRegistry registry;
  static RegularBTree<Key64>* tree = [] {
    static RegularBTree<Key64>::Config config;
    static RegularBTree<Key64> t(config, &registry);
    t.Build(GenerateDataset<Key64>(1 << 20, 44));
    return &t;
  }();
  auto queries = MakeDistributedQueries<Key64>(1 << 14,
                                               Distribution::kUniform, 45);
  std::vector<LookupResult<Key64>> results(queries.size());
  for (auto _ : state) {
    PipelinedSearch(*tree, queries.data(), queries.size(), depth,
                    results.data());
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_PipelinedRegularSearch)->Arg(1)->Arg(16);

}  // namespace
}  // namespace hbtree

BENCHMARK_MAIN();
