// Multi-tenant overload bench: offered load swept to 10x the modelled
// serving capacity across three tenants — interactive (weight 6, high
// priority, blocking admission), standard (weight 3, normal priority,
// shed_on_full), and hostile (weight 1, low priority, shed_on_full,
// tight deadline) — with model pacing so "N x capacity" means the same
// thing on every host. The QoS claim under test: the high-priority
// tenant's read p99 holds within its SLO with ZERO sheds at every load
// point while the hostile tenant's shed ratio absorbs the overload, and
// weighted fairness keeps even the hostile tenant served (no lockout).
// The bench exits 1 when any of those invariants breaks, so check.sh
// (mode `qos`) gates on it directly; the per-tenant rows it writes are
// the regression baseline BENCH_overload.json.
//
// Method: a closed-loop probe against a fresh server measures sustained
// capacity C (model pacing makes this track the simulated platform, not
// the host). Then for each multiplier m the tenants offer open-loop
// load: interactive at 0.15 C and standard at 0.25 C regardless of m
// (well-behaved tenants don't scale with the attack), hostile at
// (m - 0.40) C — total offered = m x C with all growth coming from the
// hostile tenant.
//
// Flags: --n_log2 (tree size), --bucket_log2, --pacing (model_pacing
// multiplier; sets capacity), --seconds (open-loop duration per load
// point), --probe_ops, --multipliers (comma list, default 1,2,5,10),
// --queue_capacity (per-tenant lane depth), --slo_us (interactive read
// p99 SLO), --shards, --read_workers, --pipeline_depth, --platform,
// --seed, --metrics_json (hbtree.bench.v1 report with the last — 10x —
// point's metrics snapshot and stage waterfall), --trace_out (Chrome
// trace of the last point; bucket.m_shrink/m_grow instants and exemplar
// spans live there).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/report.h"
#include "bench_support/seeds.h"
#include "bench_support/serve_runner.h"
#include "core/workload.h"
#include "obs/span_aggregator.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace hbtree::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kInteractive = 0;
constexpr int kStandard = 1;
constexpr int kHostile = 2;

// Offered-load shares of capacity. The well-behaved tenants hold their
// rate as the multiplier grows; the hostile tenant supplies the rest.
constexpr double kInteractiveShare = 0.15;
constexpr double kStandardShare = 0.25;

std::vector<serve::TenantSpec> Tenants(double slo_us) {
  std::vector<serve::TenantSpec> tenants(3);
  tenants[kInteractive].name = "interactive";
  tenants[kInteractive].weight = 6;
  tenants[kInteractive].priority = serve::Priority::kHigh;
  tenants[kInteractive].shed_on_full = false;  // backpressure, never shed
  tenants[kInteractive].read_p99_slo_us = slo_us;
  tenants[kInteractive].slo_budget = 0.01;
  tenants[kStandard].name = "standard";
  tenants[kStandard].weight = 3;
  tenants[kStandard].priority = serve::Priority::kNormal;
  tenants[kStandard].shed_on_full = true;
  tenants[kStandard].read_p99_slo_us = 4 * slo_us;
  tenants[kStandard].slo_budget = 0.10;
  tenants[kHostile].name = "hostile";
  tenants[kHostile].weight = 1;
  tenants[kHostile].priority = serve::Priority::kLow;
  tenants[kHostile].shed_on_full = true;
  tenants[kHostile].read_p99_slo_us = 8 * slo_us;
  tenants[kHostile].slo_budget = 0.95;  // shedding is its expected state
  return tenants;
}

// Per-request deadlines: generous for interactive (only a gross QoS
// failure sheds it — keeps the zero-shed gate falsifiable), moderate for
// standard, tight for hostile so its backlog sheds at dispatch instead
// of aging in the lane.
constexpr std::chrono::microseconds kDeadlines[3] = {
    std::chrono::microseconds(2'000'000), std::chrono::microseconds(600'000),
    std::chrono::microseconds(120'000)};

std::uint64_t Xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Closed-loop capacity probe: a window of in-flight lookups kept full
/// until `probe_ops` resolve. With model pacing the sustained rate
/// tracks the simulated platform's bucket service time, so the measured
/// capacity is (nearly) host-independent.
double ProbeCapacity(serve::Server<Key64>& server,
                     const std::vector<Key64>& queries,
                     std::size_t probe_ops, std::uint64_t seed) {
  constexpr std::size_t kInFlight = 8 * 1024;
  std::deque<std::future<serve::ReadResult<Key64>>> window;
  std::uint64_t rng = seed | 1;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < probe_ops; ++i) {
    window.push_back(server.SubmitLookup(
        queries[Xorshift(rng) % queries.size()], {}, kInteractive));
    if (window.size() >= kInFlight) {
      window.front().get();
      window.pop_front();
    }
  }
  while (!window.empty()) {
    window.front().get();
    window.pop_front();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  return wall > 0 ? probe_ops / wall : 0;
}

struct TenantRun {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;  // kDeadlineExceeded + kUnavailable
};

/// Open-loop source for one tenant: every millisecond tick it submits
/// the ops the rate accrued and reaps resolved futures from the front
/// of the window (sheds resolve immediately, served ops near-FIFO, so
/// the window stays bounded).
TenantRun OfferLoad(serve::Server<Key64>& server, int tenant, double rate,
                    double seconds, const std::vector<Key64>& queries,
                    std::uint64_t seed) {
  TenantRun run;
  std::deque<std::future<serve::ReadResult<Key64>>> window;
  std::uint64_t rng = seed | 1;
  double acc = 0;
  const auto reap_ready = [&] {
    while (!window.empty() &&
           window.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      const serve::ReadResult<Key64> r = window.front().get();
      window.pop_front();
      (r.status.ok() ? run.ok : run.shed)++;
    }
  };
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::microseconds(
                  static_cast<std::int64_t>(seconds * 1e6));
  Clock::time_point tick = start;
  while (tick < end) {
    tick += std::chrono::milliseconds(1);
    std::this_thread::sleep_until(tick);
    acc += rate / 1000.0;
    const int n = static_cast<int>(acc);
    acc -= n;
    for (int i = 0; i < n; ++i) {
      window.push_back(
          server.SubmitLookup(queries[Xorshift(rng) % queries.size()],
                              kDeadlines[tenant], tenant));
      ++run.submitted;
    }
    reap_ready();
  }
  while (!window.empty()) {
    const serve::ReadResult<Key64> r = window.front().get();
    window.pop_front();
    (r.status.ok() ? run.ok : run.shed)++;
  }
  return run;
}

struct PointResult {
  double load_x = 0;
  double wall_seconds = 0;
  serve::ServeStats stats;
};

int Main(int argc, char** argv) {
  Args args(argc, argv);
  args.PrintActive();
  const sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 18);
  const int bucket = 1 << args.GetInt("bucket_log2", 10);
  const double pacing = args.GetDouble("pacing", 64.0);
  const double seconds = args.GetDouble("seconds", 2.0);
  const std::size_t probe_ops =
      static_cast<std::size_t>(args.GetInt("probe_ops", 32 * 1024));
  const std::size_t queue_capacity =
      static_cast<std::size_t>(args.GetInt("queue_capacity", 4096));
  const double slo_us = args.GetDouble("slo_us", 250'000.0);
  const SeedPlan seeds(static_cast<std::uint64_t>(args.GetInt("seed", 1)));

  std::vector<double> multipliers;
  {
    const std::string spec = args.GetString("multipliers", "1,2,5,10");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      multipliers.push_back(std::stod(spec.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  std::printf("building %zu-key tree and calibrating on %s...\n", n,
              platform.name.c_str());
  const auto data = GenerateDataset<Key64>(n, seeds.dataset);
  const auto queries = MakeLookupQueries(data, seeds.queries);
  const std::vector<serve::TenantSpec> tenants = Tenants(slo_us);

  serve::ServerOptions options =
      CalibratedServerOptions(platform, data, seeds.calibrate, bucket);
  options.num_shards = static_cast<int>(args.GetInt("shards", 1));
  options.num_read_workers =
      static_cast<int>(args.GetInt("read_workers", 1));
  options.pipeline_depth =
      static_cast<int>(args.GetInt("pipeline_depth", 2));
  options.queue_capacity = queue_capacity;
  options.model_pacing = pacing;
  // Let the adaptive controller act below the (small) bench bucket —
  // the derived floor max(min_sub_bucket, M/16) would pin M in place.
  options.adapt_min_bucket = static_cast<int>(
      args.GetInt("adapt_min_bucket", std::max(1, bucket / 8)));
  options.min_sub_bucket =
      std::min(options.min_sub_bucket, std::max(1, bucket / 8));
  options.tenants = tenants;
  options.slos = serve::TenantServeSlos(tenants);

  // Capacity probe on a throwaway server with the identical topology.
  double capacity = 0;
  {
    Status status;
    auto probe = serve::Server<Key64>::Create(options, data, &status);
    if (probe == nullptr) {
      std::fprintf(stderr, "probe server creation failed: %s\n",
                   status.message().c_str());
      return 1;
    }
    capacity = ProbeCapacity(*probe, queries, probe_ops, seeds.queries);
    probe->Shutdown();
  }
  if (capacity <= 0) {
    std::fprintf(stderr, "capacity probe measured zero throughput\n");
    return 1;
  }
  std::printf("modelled serving capacity: %.0f ops/s (pacing %.0fx)\n",
              capacity, pacing);

  BenchReport report("serve_overload");
  report.Meta("platform", platform.name);
  report.MetaNum("n", static_cast<double>(n));
  report.MetaNum("bucket", bucket);
  report.MetaNum("pacing", pacing);
  report.MetaNum("seconds", seconds);
  report.MetaNum("queue_capacity", static_cast<double>(queue_capacity));
  report.MetaNum("slo_us", slo_us);
  report.MetaNum("shards", options.num_shards);
  report.MetaNum("read_workers", options.num_read_workers);
  // Tenant topology is part of the report's identity: a baseline from
  // one weight/priority/deadline layout must not gate a run of another
  // (bench_compare.py META_IDENTITY).
  report.Meta("tenants", "interactive,standard,hostile");
  report.Meta("tenant_weights", "6,3,1");
  report.Meta("tenant_priorities", "high,normal,low");
  report.Meta("tenant_deadlines_us", "2000000,600000,120000");
  report.Meta("tenant_shares", "0.15,0.25,overload");
  report.Meta("multipliers", args.GetString("multipliers", "1,2,5,10"));
  report.MetaNum("capacity_ops_per_s", capacity);
  seeds.Record(report);

  std::vector<PointResult> points;
  obs::MetricsSnapshot last_metrics;
  obs::StageWaterfall last_stages;

  for (const double mult : multipliers) {
    // Fresh server and trace session per load point: stats, SLO burn
    // and exemplars all describe exactly one load level.
    obs::TraceSession::Start();
    Status status;
    auto server = serve::Server<Key64>::Create(options, data, &status);
    if (server == nullptr) {
      std::fprintf(stderr, "server creation failed at %gx: %s\n", mult,
                   status.message().c_str());
      return 1;
    }
    const double rates[3] = {
        kInteractiveShare * capacity, kStandardShare * capacity,
        std::max(0.05, mult - kInteractiveShare - kStandardShare) *
            capacity};
    std::printf(
        "== load %gx capacity: interactive %.0f/s, standard %.0f/s, "
        "hostile %.0f/s ==\n",
        mult, rates[0], rates[1], rates[2]);

    TenantRun runs[3];
    const Clock::time_point start = Clock::now();
    {
      std::vector<std::thread> sources;
      for (int t = 0; t < 3; ++t) {
        sources.emplace_back([&, t] {
          runs[t] = OfferLoad(*server, t, rates[t], seconds, queries,
                              seeds.workload + static_cast<unsigned>(t));
        });
      }
      for (std::thread& s : sources) s.join();
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    server->Shutdown();
    obs::TraceSession::Stop();
    PointResult point;
    point.load_x = mult;
    point.wall_seconds = wall;
    point.stats = server->Stats();
    points.push_back(point);
    last_metrics = server->metrics().Collect();
    last_stages = obs::SpanAggregator::FromSession();

    std::printf("%s\n", point.stats.ToString().c_str());
    for (int t = 0; t < 3; ++t) {
      std::printf("  offered t%d: %llu submitted, %llu ok, %llu shed\n", t,
                  static_cast<unsigned long long>(runs[t].submitted),
                  static_cast<unsigned long long>(runs[t].ok),
                  static_cast<unsigned long long>(runs[t].shed));
    }
  }

  // One aggregate row plus one per-tenant row per load point. load_x
  // leads every row and (with the tenant index) keys row matching in
  // bench_compare.py.
  for (const PointResult& point : points) {
    BenchReport::Row& row = report.AddRow();
    row.Num("load_x", point.load_x, 1);
    report.AddServeStatsRow(row, point.stats);
    row.Num("bucket_shrinks",
            static_cast<double>(point.stats.bucket_shrinks), 0)
        .Num("bucket_grows", static_cast<double>(point.stats.bucket_grows),
             0)
        .Num("degraded_sheds",
             static_cast<double>(point.stats.degraded_sheds), 0);
    for (std::size_t t = 0; t < point.stats.tenants.size(); ++t) {
      BenchReport::Row& trow = report.AddRow();
      trow.Num("load_x", point.load_x, 1);
      report.AddTenantStatsRow(trow, static_cast<int>(t),
                               point.stats.tenants[t], point.wall_seconds);
    }
  }
  report.SetStages(last_stages);
  report.PrintTable("multi-tenant overload sweep");

  // -- QoS invariants (exit 1 on violation) -------------------------------
  bool ok = true;
  const auto gate = [&ok](bool pass, const char* format, auto... values) {
    std::printf(pass ? "PASS: " : "FAIL: ");
    std::printf(format, values...);
    std::printf("\n");
    if (!pass) ok = false;
  };
  const double max_mult =
      *std::max_element(multipliers.begin(), multipliers.end());
  for (const PointResult& point : points) {
    const serve::TenantServeStats& hi = point.stats.tenants[kInteractive];
    const serve::TenantServeStats& hostile =
        point.stats.tenants[kHostile];
    gate(hi.shed() == 0, "%gx: interactive sheds == 0 (got %llu)",
         point.load_x, static_cast<unsigned long long>(hi.shed()));
    gate(hi.read_latency.count > 0 && hi.read_latency.p99_us <= slo_us,
         "%gx: interactive read p99 %.0f us <= SLO %.0f us", point.load_x,
         hi.read_latency.p99_us, slo_us);
    gate(hostile.served() > 0,
         "%gx: hostile tenant still served (%llu ops; weighted "
         "fairness, not lockout)",
         point.load_x, static_cast<unsigned long long>(hostile.served()));
    if (point.load_x >= max_mult) {
      gate(hostile.shed_ratio() >= 0.5,
           "%gx: hostile shed ratio %.2f >= 0.5 (overload absorbed by "
           "the low-priority tenant)",
           point.load_x, hostile.shed_ratio());
    }
  }

  if (args.Has("metrics_json")) {
    if (!report.WriteJson(args.GetString("metrics_json", ""),
                          &last_metrics)) {
      return 1;
    }
  }
  MaybeWriteTrace(args);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) { return hbtree::bench::Main(argc, argv); }
