// Figure 8 (Section 6.2): software pipelining and SIMD node search.
//
// Four configurations of the implicit CPU-optimized B+-tree on M2 (the
// AVX2 machine): sequential search without software pipelining,
// sequential + SWP, linear SIMD + SWP, hierarchical SIMD + SWP.
// Expected: SWP improves throughput by ~108-152%; hierarchical SIMD is
// the fastest, and both SIMD variants lose their edge as the tree becomes
// memory-latency bound.

#include <cstdio>

#include "bench_support/harness.h"
#include "cpubtree/implicit_btree.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m2");
  auto sizes = SizeSweepFromArgs(args, 18, 23, 1);
  std::uint64_t seed = args.GetInt("seed", 42);

  struct Setup {
    const char* name;
    NodeSearchAlgo algo;
    int pipeline_depth;
  };
  const Setup setups[] = {
      {"seq (no SWP)", NodeSearchAlgo::kSequential, 1},
      {"sequential", NodeSearchAlgo::kSequential, 16},
      {"linear", NodeSearchAlgo::kLinearSimd, 16},
      {"hierarchical", NodeSearchAlgo::kHierarchicalSimd, 16},
  };

  std::printf("Platform: %s (%s)\n", platform.name.c_str(),
              platform.cpu.name.c_str());
  Table table({"tuples", "algorithm", "MQPS", "vs no-SWP"});
  table.PrintTitle("node search / software pipelining (paper Fig. 8)");
  table.PrintHeader();
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<Key64>(n, seed);
    auto queries = MakeLookupQueries(data, seed + 1);
    double baseline = 0;
    for (const Setup& setup : setups) {
      PageRegistry registry;
      ImplicitBTree<Key64>::Config config;
      config.search_algo = setup.algo;
      ImplicitBTree<Key64> tree(config, &registry);
      tree.Build(data);
      ModelOptions options;
      options.pipeline_depth = setup.pipeline_depth;
      SearchMeasurement m = MeasureCpuSearch(tree, queries, platform,
                                             registry, setup.algo, options);
      if (baseline == 0) baseline = m.estimate.mqps;
      table.PrintRow({Table::Log2Size(n), setup.name,
                      Table::Num(m.estimate.mqps, 1),
                      Table::Num(m.estimate.mqps / baseline, 2) + "x"});
    }
  }
  std::printf(
      "\nPaper expectation: SWP gains 108-152%%; hierarchical SIMD "
      "slightly beats linear; SIMD's edge shrinks for large trees.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
