// Figure 20 (Appendix B.2): software pipelining depth.
//
// Lookup throughput and latency of the implicit CPU-optimized B+-tree
// for pipeline depths 1..32 (Algorithm 2). Expected: throughput improves
// ~2.5X from depth 1 to 16 with flattening gains (memory-level
// parallelism saturates), while latency grows roughly linearly with the
// depth — ~6X at depth 16.

#include <cstdio>

#include "bench_support/harness.h"
#include "cpubtree/implicit_btree.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);
  auto queries = MakeLookupQueries(data, seed + 1);

  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  tree.Build(data);

  Table table({"depth", "MQPS", "vs depth 1", "latency us", "lat ratio"});
  table.PrintTitle("software pipeline depth (paper Fig. 20)");
  table.PrintHeader();
  double base_mqps = 0, base_latency = 0;
  for (int depth : {1, 2, 4, 8, 16, 32}) {
    ModelOptions options;
    options.pipeline_depth = depth;
    auto m = MeasureCpuSearch(tree, queries, platform, registry,
                              config.search_algo, options);
    if (depth == 1) {
      base_mqps = m.estimate.mqps;
      base_latency = m.estimate.latency_us;
    }
    table.PrintRow({std::to_string(depth), Table::Num(m.estimate.mqps, 1),
                    Table::Num(m.estimate.mqps / base_mqps, 2) + "x",
                    Table::Num(m.estimate.latency_us, 2),
                    Table::Num(m.estimate.latency_us / base_latency, 1) +
                        "x"});
  }
  std::printf(
      "\nPaper expectation: ~2.5x throughput by depth 16, little beyond; "
      "latency ~6x at depth 16 and rising with depth.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
