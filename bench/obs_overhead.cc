// Observability overhead microbench: proves the tracing macros are free
// when compiled out and bounds their cost when compiled in.
//
// Each mode runs the same hot loop — a leaf-style binary search over a
// 4096-key node per iteration — wrapped in a different span policy:
//
//   baseline      no span object at all
//   compiled_out  obs::NullSpan, the exact expansion the HBTREE_TRACE_*
//                 macros produce when HBTREE_OBS_TRACING=0 (the default
//                 for every library target); must be within 2% of
//                 baseline or the bench exits 1
//   disabled      obs::ScopedSpan with no active session (one relaxed
//                 load + branch per iteration)
//   enabled       obs::ScopedSpan recording into an active session (two
//                 clock reads + a thread-local vector push)
//
// Times are min-of-reps ns/op with the modes interleaved round-robin
// (so frequency ramp or a noisy neighbour hits every mode equally); the
// compiled_out vs baseline delta is measurement noise on identical
// machine code, not a real cost.
//
// Flags: --iters (per rep), --reps, --metrics_json=<path> (hbtree.bench.v1
// rows; no metrics snapshot — this bench exercises no devices).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/report.h"
#include "obs/trace.h"

namespace hbtree::bench {
namespace {

using Clock = std::chrono::steady_clock;

// xorshift so the searched key can't be hoisted out of the loop.
inline std::uint64_t Mix(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

std::vector<std::uint64_t> MakeNode(std::size_t n) {
  std::vector<std::uint64_t> keys(n);
  std::uint64_t v = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t& k : keys) {
    v = Mix(v);
    k = v;
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

template <typename SpanT>
std::uint64_t LoopOnce(const std::vector<std::uint64_t>& keys,
                       std::size_t iters) {
  std::uint64_t sink = 0;
  std::uint64_t state = 1;
  for (std::size_t i = 0; i < iters; ++i) {
    SpanT span("obs.work", "bench");
    state = Mix(state);
    const auto it = std::lower_bound(keys.begin(), keys.end(), state);
    sink += static_cast<std::uint64_t>(it - keys.begin());
  }
  return sink;
}

struct NoSpan {
  NoSpan(const char* /*name*/, const char* /*cat*/) {}
};

/// One timed run of `loop`, returning ns/op.
template <typename LoopFn>
double TimeNs(LoopFn&& loop, std::size_t iters, std::uint64_t* sink) {
  const auto t0 = Clock::now();
  *sink ^= loop(iters);
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  args.PrintActive();
  const std::size_t iters =
      static_cast<std::size_t>(args.GetInt("iters", 200 * 1024));
  const int reps = static_cast<int>(args.GetInt("reps", 9));

  const auto keys = MakeNode(4096);
  std::uint64_t sink = 0;

  // Warm up caches and the branch predictor before any timed rep.
  sink ^= LoopOnce<NoSpan>(keys, iters);
  sink ^= LoopOnce<obs::NullSpan>(keys, iters);
  sink ^= LoopOnce<obs::ScopedSpan>(keys, iters);

  double baseline_ns = 1e300, compiled_out_ns = 1e300;
  double disabled_ns = 1e300, enabled_ns = 1e300;
  for (int r = 0; r < reps; ++r) {
    obs::TraceSession::Stop();  // make "disabled" explicit
    baseline_ns = std::min(
        baseline_ns,
        TimeNs([&](std::size_t n) { return LoopOnce<NoSpan>(keys, n); },
               iters, &sink));
    compiled_out_ns = std::min(
        compiled_out_ns,
        TimeNs(
            [&](std::size_t n) { return LoopOnce<obs::NullSpan>(keys, n); },
            iters, &sink));
    disabled_ns = std::min(
        disabled_ns,
        TimeNs(
            [&](std::size_t n) {
              return LoopOnce<obs::ScopedSpan>(keys, n);
            },
            iters, &sink));
    obs::TraceSession::Start();  // also clears the event buffers
    enabled_ns = std::min(
        enabled_ns,
        TimeNs(
            [&](std::size_t n) {
              return LoopOnce<obs::ScopedSpan>(keys, n);
            },
            iters, &sink));
  }
  obs::TraceSession::Stop();
  obs::TraceSession::Clear();

  const auto pct = [&](double ns) {
    return (ns - baseline_ns) / baseline_ns * 100.0;
  };

  BenchReport report("obs_overhead");
  report.MetaNum("iters", static_cast<double>(iters));
  report.MetaNum("reps", reps);
  report.MetaNum("node_keys", static_cast<double>(keys.size()));
  report.AddRow().Text("mode", "baseline").Num("ns_per_op", baseline_ns, 2);
  report.AddRow()
      .Text("mode", "compiled_out")
      .Num("ns_per_op", compiled_out_ns, 2)
      .Num("overhead_pct", pct(compiled_out_ns), 2);
  report.AddRow()
      .Text("mode", "disabled")
      .Num("ns_per_op", disabled_ns, 2)
      .Num("overhead_pct", pct(disabled_ns), 2);
  report.AddRow()
      .Text("mode", "enabled")
      .Num("ns_per_op", enabled_ns, 2)
      .Num("overhead_pct", pct(enabled_ns), 2);
  report.PrintTable("tracing overhead per instrumented op");

  if (args.Has("metrics_json")) {
    if (!report.WriteJson(args.GetString("metrics_json", ""))) return 1;
  }

  const double compiled_out_pct = pct(compiled_out_ns);
  const bool ok = compiled_out_pct < 2.0;
  std::printf("compiled-out overhead: %.2f%% (budget 2%%) — %s\n",
              compiled_out_pct, ok ? "PASS" : "FAIL");
  std::printf("(sink %llu)\n", static_cast<unsigned long long>(sink));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) { return hbtree::bench::Main(argc, argv); }
