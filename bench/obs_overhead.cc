// Observability overhead microbench: proves the tracing macros are free
// when compiled out and bounds their cost when compiled in.
//
// Each mode runs the same hot loop — a leaf-style binary search over a
// 4096-key node per iteration — wrapped in a different span policy:
//
//   baseline      no span object at all
//   compiled_out  obs::NullSpan, the exact expansion the HBTREE_TRACE_*
//                 macros produce when HBTREE_OBS_TRACING=0 (the default
//                 for every library target); must be within 2% of
//                 baseline or the bench exits 1
//   disabled      obs::ScopedSpan with no active session (one relaxed
//                 load + branch per iteration)
//   enabled       obs::ScopedSpan recording into an active session (two
//                 clock reads + a thread-local vector push)
//
// A second pair of modes bounds the heat-observability hooks (obs/heat.h)
// the same way:
//
//   heat_compiled_out  the exact expansion of the heat hooks when
//                      HBTREE_OBS_HEAT=0: TraceNodeTouch against a
//                      NullTracer (if-constexpr'd away) and an
//                      HBTREE_HEAT_ONLY record site deleted by the
//                      preprocessor — identical machine code to baseline,
//                      same <2% budget, same exit-1 gate
//   heat_enabled       one KeyRangeSketch::Record (bin multiply + relaxed
//                      add) plus an OnNodeTouch into a LevelHeatTracer and
//                      the pool's touch counter per iteration — the
//                      serving dispatch path's per-op heat cost
//
// Times are min-of-reps ns/op with the modes interleaved round-robin
// (so frequency ramp or a noisy neighbour hits every mode equally); the
// compiled_out vs baseline delta is measurement noise on identical
// machine code, not a real cost.
//
// Flags: --iters (per rep), --reps, --metrics_json=<path> (hbtree.bench.v1
// rows; no metrics snapshot — this bench exercises no devices).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/report.h"
#include "core/trace.h"
#include "obs/heat.h"
#include "obs/trace.h"

namespace hbtree::bench {
namespace {

using Clock = std::chrono::steady_clock;

// xorshift so the searched key can't be hoisted out of the loop.
inline std::uint64_t Mix(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

std::vector<std::uint64_t> MakeNode(std::size_t n) {
  std::vector<std::uint64_t> keys(n);
  std::uint64_t v = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t& k : keys) {
    v = Mix(v);
    k = v;
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

template <typename SpanT>
std::uint64_t LoopOnce(const std::vector<std::uint64_t>& keys,
                       std::size_t iters) {
  std::uint64_t sink = 0;
  std::uint64_t state = 1;
  for (std::size_t i = 0; i < iters; ++i) {
    SpanT span("obs.work", "bench");
    state = Mix(state);
    const auto it = std::lower_bound(keys.begin(), keys.end(), state);
    sink += static_cast<std::uint64_t>(it - keys.begin());
  }
  return sink;
}

struct NoSpan {
  NoSpan(const char* /*name*/, const char* /*cat*/) {}
};

/// Stand-in for a PairedPool in the heat loops: the same NoteTouch shape
/// (one relaxed add) without dragging tree storage into the microbench.
struct PoolStub {
  mutable std::atomic<std::uint64_t> touches{0};
  void NoteTouch(std::uint32_t /*idx*/) const {
    touches.fetch_add(1, std::memory_order_relaxed);
  }
};

/// The hot loop with the heat hooks in their compiled-out shape: a
/// NullTracer has no OnNodeTouch, so TraceNodeTouch is if-constexpr'd to
/// nothing and the sketch record site is deleted outright — this must
/// time identical to baseline.
std::uint64_t HeatCompiledOutLoop(const std::vector<std::uint64_t>& keys,
                                  std::size_t iters, const PoolStub& pool) {
  std::uint64_t sink = 0;
  std::uint64_t state = 1;
  NullTracer tracer;
  for (std::size_t i = 0; i < iters; ++i) {
    state = Mix(state);
    TraceNodeTouch(&tracer, pool, 0, NodeClass::kBigLeaf, 0u);
    const auto it = std::lower_bound(keys.begin(), keys.end(), state);
    sink += static_cast<std::uint64_t>(it - keys.begin());
  }
  return sink;
}

/// The hot loop paying the full per-op heat cost: one sketch record (the
/// serving dispatch hook) plus a traced node touch (tracer cell update +
/// pool touch counter).
std::uint64_t HeatEnabledLoop(const std::vector<std::uint64_t>& keys,
                              std::size_t iters, const PoolStub& pool,
                              obs::KeyRangeSketch* sketch,
                              obs::LevelHeatTracer* tracer) {
  std::uint64_t sink = 0;
  std::uint64_t state = 1;
  for (std::size_t i = 0; i < iters; ++i) {
    state = Mix(state);
    sketch->Record(state);
    TraceNodeTouch(tracer, pool, 0, NodeClass::kBigLeaf, 0u);
    const auto it = std::lower_bound(keys.begin(), keys.end(), state);
    sink += static_cast<std::uint64_t>(it - keys.begin());
  }
  return sink;
}

/// One timed run of `loop`, returning ns/op.
template <typename LoopFn>
double TimeNs(LoopFn&& loop, std::size_t iters, std::uint64_t* sink) {
  const auto t0 = Clock::now();
  *sink ^= loop(iters);
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  args.PrintActive();
  const std::size_t iters =
      static_cast<std::size_t>(args.GetInt("iters", 200 * 1024));
  const int reps = static_cast<int>(args.GetInt("reps", 9));

  const auto keys = MakeNode(4096);
  std::uint64_t sink = 0;

  PoolStub pool;
  obs::KeyRangeSketch::Options sketch_options;
  obs::KeyRangeSketch sketch(0, ~0ull, sketch_options);
  // The heat loops never call OnAccess, so one token cache level is
  // enough to construct the tracer.
  sim::CacheHierarchy caches({{"L1", 32 * 1024, 8, 64}});
  obs::LevelHeatTracer heat_tracer(&caches);

  // Warm up caches and the branch predictor before any timed rep.
  sink ^= LoopOnce<NoSpan>(keys, iters);
  sink ^= LoopOnce<obs::NullSpan>(keys, iters);
  sink ^= LoopOnce<obs::ScopedSpan>(keys, iters);
  sink ^= HeatCompiledOutLoop(keys, iters, pool);
  sink ^= HeatEnabledLoop(keys, iters, pool, &sketch, &heat_tracer);

  double baseline_ns = 1e300, compiled_out_ns = 1e300;
  double disabled_ns = 1e300, enabled_ns = 1e300;
  double heat_compiled_out_ns = 1e300, heat_enabled_ns = 1e300;
  for (int r = 0; r < reps; ++r) {
    obs::TraceSession::Stop();  // make "disabled" explicit
    baseline_ns = std::min(
        baseline_ns,
        TimeNs([&](std::size_t n) { return LoopOnce<NoSpan>(keys, n); },
               iters, &sink));
    compiled_out_ns = std::min(
        compiled_out_ns,
        TimeNs(
            [&](std::size_t n) { return LoopOnce<obs::NullSpan>(keys, n); },
            iters, &sink));
    disabled_ns = std::min(
        disabled_ns,
        TimeNs(
            [&](std::size_t n) {
              return LoopOnce<obs::ScopedSpan>(keys, n);
            },
            iters, &sink));
    heat_compiled_out_ns = std::min(
        heat_compiled_out_ns,
        TimeNs(
            [&](std::size_t n) { return HeatCompiledOutLoop(keys, n, pool); },
            iters, &sink));
    heat_enabled_ns = std::min(
        heat_enabled_ns,
        TimeNs(
            [&](std::size_t n) {
              return HeatEnabledLoop(keys, n, pool, &sketch, &heat_tracer);
            },
            iters, &sink));
    obs::TraceSession::Start();  // also clears the event buffers
    enabled_ns = std::min(
        enabled_ns,
        TimeNs(
            [&](std::size_t n) {
              return LoopOnce<obs::ScopedSpan>(keys, n);
            },
            iters, &sink));
  }
  obs::TraceSession::Stop();
  obs::TraceSession::Clear();

  const auto pct = [&](double ns) {
    return (ns - baseline_ns) / baseline_ns * 100.0;
  };

  BenchReport report("obs_overhead");
  report.MetaNum("iters", static_cast<double>(iters));
  report.MetaNum("reps", reps);
  report.MetaNum("node_keys", static_cast<double>(keys.size()));
  report.AddRow().Text("mode", "baseline").Num("ns_per_op", baseline_ns, 2);
  report.AddRow()
      .Text("mode", "compiled_out")
      .Num("ns_per_op", compiled_out_ns, 2)
      .Num("overhead_pct", pct(compiled_out_ns), 2);
  report.AddRow()
      .Text("mode", "disabled")
      .Num("ns_per_op", disabled_ns, 2)
      .Num("overhead_pct", pct(disabled_ns), 2);
  report.AddRow()
      .Text("mode", "enabled")
      .Num("ns_per_op", enabled_ns, 2)
      .Num("overhead_pct", pct(enabled_ns), 2);
  report.AddRow()
      .Text("mode", "heat_compiled_out")
      .Num("ns_per_op", heat_compiled_out_ns, 2)
      .Num("overhead_pct", pct(heat_compiled_out_ns), 2);
  report.AddRow()
      .Text("mode", "heat_enabled")
      .Num("ns_per_op", heat_enabled_ns, 2)
      .Num("overhead_pct", pct(heat_enabled_ns), 2);
  report.PrintTable("tracing overhead per instrumented op");

  if (args.Has("metrics_json")) {
    if (!report.WriteJson(args.GetString("metrics_json", ""))) return 1;
  }

  const double compiled_out_pct = pct(compiled_out_ns);
  const double heat_compiled_out_pct = pct(heat_compiled_out_ns);
  const bool ok = compiled_out_pct < 2.0 && heat_compiled_out_pct < 2.0;
  std::printf("compiled-out overhead: %.2f%% (budget 2%%) — %s\n",
              compiled_out_pct, compiled_out_pct < 2.0 ? "PASS" : "FAIL");
  std::printf("heat compiled-out overhead: %.2f%% (budget 2%%) — %s\n",
              heat_compiled_out_pct,
              heat_compiled_out_pct < 2.0 ? "PASS" : "FAIL");
  std::printf("(sink %llu)\n", static_cast<unsigned long long>(sink));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) { return hbtree::bench::Main(argc, argv); }
