// Figure 7 (Section 6.2): memory page configuration.
//
// Three configurations of the CPU-optimized B+-tree:
//   cfg1: I-segment and L-segment on 4K pages
//   cfg2: I-segment on 1G huge pages, L-segment on 4K pages
//   cfg3: both segments on 1G huge pages
//
// (a) average TLB misses per query (single-threaded trace) — misses grow
//     with tree size for cfg1, are bounded by ~1 for cfg2, and vanish for
//     cfg3 until the tree outgrows the four 1G TLB entries;
// (b) multi-threaded search throughput — cfg3 > cfg2 > cfg1 because 1G
//     page walks are also cheaper when they do happen.

#include <cstdio>

#include "bench_support/harness.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"

namespace hbtree::bench {
namespace {

struct PageConfig {
  const char* name;
  PageSize inner;
  PageSize leaf;
};

constexpr PageConfig kConfigs[] = {
    {"4K/4K", PageSize::k4K, PageSize::k4K},
    {"1G/4K", PageSize::k1G, PageSize::k4K},
    {"1G/1G", PageSize::k1G, PageSize::k1G},
};

template <typename Tree, typename K>
void RunTree(const char* tree_name, const sim::PlatformSpec& platform,
             const std::vector<std::size_t>& sizes, std::uint64_t seed) {
  Table table({"tuples", "config", "tlb miss/q", "walk acc/q", "MQPS"});
  table.PrintTitle(std::string(tree_name) +
                   " B+-tree: page configuration (paper Fig. 7)");
  table.PrintHeader();
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<K>(n, seed);
    auto queries = MakeLookupQueries(data, seed + 1);
    for (const PageConfig& config : kConfigs) {
      PageRegistry registry;
      typename Tree::Config tree_config;
      tree_config.inner_page = config.inner;
      tree_config.leaf_page = config.leaf;
      Tree tree(tree_config, &registry);
      tree.Build(data);

      SearchMeasurement m =
          MeasureCpuSearch(tree, queries, platform, registry,
                           tree_config.search_algo);
      table.PrintRow({Table::Log2Size(n), config.name,
                      Table::Num(m.profile.TlbMissesPerQuery(), 3),
                      Table::Num(static_cast<double>(m.profile.walk_accesses) /
                                     m.profile.queries,
                                 3),
                      Table::Num(m.estimate.mqps, 1)});
    }
  }
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  using namespace hbtree;
  using namespace hbtree::bench;
  Args args(argc, argv);
  args.PrintActive();
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 18, 22, 2);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s (%s)\n", platform.name.c_str(),
              platform.cpu.name.c_str());
  RunTree<ImplicitBTree<Key64>, Key64>("implicit", platform, sizes, seed);
  RunTree<RegularBTree<Key64>, Key64>("regular", platform, sizes, seed);
  std::printf(
      "\nPaper expectation: cfg1 misses grow with tree size; cfg2 bounded "
      "by ~1 miss/query; cfg3 ~0 for trees < 4GB; throughput cfg3 >= cfg2 "
      "> cfg1.\n");
  return 0;
}
