// Microbenchmark (real wall clock, google-benchmark): bulk-build
// throughput of every index structure in the repository, plus the
// serialized-snapshot load path — the operations a warehouse pays at
// refresh time (Section 5.6) measured natively on the build host.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/workload.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"
#include "fast/fast_tree.h"
#include "io/tree_io.h"

namespace hbtree {
namespace {

const std::vector<KeyValue<Key64>>& SharedData() {
  static const auto* data =
      new std::vector<KeyValue<Key64>>(GenerateDataset<Key64>(1 << 20, 42));
  return *data;
}

void BM_BuildImplicit(benchmark::State& state) {
  const auto& data = SharedData();
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  for (auto _ : state) {
    tree.Build(data);
    benchmark::DoNotOptimize(tree.height());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BuildImplicit)->Unit(benchmark::kMillisecond);

void BM_BuildRegular(benchmark::State& state) {
  const auto& data = SharedData();
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  RegularBTree<Key64> tree(config, &registry);
  for (auto _ : state) {
    tree.Build(data);
    benchmark::DoNotOptimize(tree.height());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BuildRegular)->Unit(benchmark::kMillisecond);

void BM_BuildFast(benchmark::State& state) {
  const auto& data = SharedData();
  PageRegistry registry;
  FastTree<Key64>::Config config;
  FastTree<Key64> tree(config, &registry);
  for (auto _ : state) {
    tree.Build(data);
    benchmark::DoNotOptimize(tree.depth());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BuildFast)->Unit(benchmark::kMillisecond);

void BM_SnapshotSaveLoad(benchmark::State& state) {
  const auto& data = SharedData();
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  tree.Build(data);
  const std::string path = "/tmp/hbtree_micro_snapshot.hbt";
  for (auto _ : state) {
    Status saved = SaveTreeFile(tree, path);
    PageRegistry reload_registry;
    ImplicitBTree<Key64> reloaded(config, &reload_registry);
    Status loaded = LoadTreeFile(&reloaded, path);
    benchmark::DoNotOptimize(loaded.ok() && saved.ok());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnapshotSaveLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hbtree

BENCHMARK_MAIN();
