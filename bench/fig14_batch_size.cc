// Figure 14 (Section 6.3): update batch size — synchronized vs
// asynchronous crossover.
//
// Time to apply batches of 8K..512K updates to a regular HB+-tree,
// including I-segment maintenance. Expected: the synchronized method
// (one small transfer per modified node) wins for small batches; the
// asynchronous method (one bulk I-segment transfer) wins once the batch
// is large enough to amortize it — the paper's 64M-key tree crosses over
// between 64K and 128K. The crossover scales with the tree (I-segment)
// size; run with --n_log2=26 for the paper's configuration.

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "hybrid/batch_update.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 24);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);
  auto probes = MakeLookupQueries(data, seed + 1);
  probes.resize(std::min<std::size_t>(probes.size(), 1 << 16));

  Table table({"batch", "sync ms", "async ms", "winner"});
  table.PrintTitle("batch size: sync vs async update (paper Fig. 14)");
  table.PrintHeader();
  for (std::size_t batch_size = 8 * 1024; batch_size <= 512 * 1024;
       batch_size *= 2) {
    double times[2];
    int i = 0;
    for (UpdateMethod method :
         {UpdateMethod::kSynchronized, UpdateMethod::kAsyncParallel}) {
      SimPlatform sim(platform);
      PageRegistry registry;
      HBRegularTree<Key64>::Config config;
      config.tree.leaf_fill = 0.7;
      HBRegularTree<Key64> tree(config, &registry, &sim.device,
                                &sim.transfer);
      HBTREE_CHECK(tree.Build(data));
      BatchUpdateConfig uconfig;
      uconfig.real_threads = 2;
      uconfig.model_threads = platform.cpu.threads;
      uconfig.cpu_update_us = EstimateUpdateCostUs(tree.host_tree(), probes,
                                                   platform, registry);
      auto batch = MakeUpdateBatch<Key64>(data, batch_size,
                                          /*insert_fraction=*/0.5, seed + 2);
      // Figure 14 includes I-segment maintenance for both methods.
      BatchUpdateStats stats = RunBatchUpdate(tree, batch, method, uconfig);
      times[i++] = stats.total_us / 1e3;
    }
    table.PrintRow({std::to_string(batch_size / 1024) + "K",
                    Table::Num(times[0], 2), Table::Num(times[1], 2),
                    times[0] < times[1] ? "sync" : "async"});
  }
  std::printf(
      "\nPaper expectation (64M tree): sync wins up to ~64K, async from "
      "~128K; the crossover shifts with tree size.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
