// Figure 19 (Appendix B.1): HB+-tree lookup using only the CPU.
//
// The HB+-tree node layouts searched entirely on the CPU, against the
// CPU-optimized layouts. Expected: the regular variants are identical
// (same node structures); the CPU-optimized implicit tree slightly beats
// the implicit HB+-tree, whose fanout is decremented by one for the
// benefit of the GPU kernel (8 vs 9 for 64-bit keys), making it taller.

#include <cstdio>

#include "bench_support/harness.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 20, 24, 1);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s\n", platform.name.c_str());
  Table table({"tuples", "cpu-impl", "hb-impl(cpu)", "impl ratio",
               "regular", "hb height", "cpu height"});
  table.PrintTitle("CPU-only lookup: HB vs CPU layouts (paper Fig. 19)");
  table.PrintHeader();
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<Key64>(n, seed);
    auto queries = MakeLookupQueries(data, seed + 1);

    PageRegistry r1;
    ImplicitBTree<Key64>::Config cpu_config;  // fanout 9
    ImplicitBTree<Key64> cpu_tree(cpu_config, &r1);
    cpu_tree.Build(data);
    auto cpu = MeasureCpuSearch(cpu_tree, queries, platform, r1,
                                cpu_config.search_algo);

    PageRegistry r2;
    ImplicitBTree<Key64>::Config hb_config;
    hb_config.hybrid_layout = true;  // fanout 8
    ImplicitBTree<Key64> hb_tree(hb_config, &r2);
    hb_tree.Build(data);
    auto hb = MeasureCpuSearch(hb_tree, queries, platform, r2,
                               hb_config.search_algo);

    PageRegistry r3;
    RegularBTree<Key64>::Config reg_config;
    RegularBTree<Key64> reg_tree(reg_config, &r3);
    reg_tree.Build(data);
    auto reg = MeasureCpuSearch(reg_tree, queries, platform, r3,
                                reg_config.search_algo);

    table.PrintRow(
        {Table::Log2Size(n), Table::Num(cpu.estimate.mqps, 1),
         Table::Num(hb.estimate.mqps, 1),
         Table::Num(cpu.estimate.mqps / hb.estimate.mqps, 2) + "x",
         Table::Num(reg.estimate.mqps, 1), std::to_string(hb_tree.height()),
         std::to_string(cpu_tree.height())});
  }
  std::printf(
      "\nPaper expectation: regular layouts identical by construction; "
      "CPU-optimized implicit slightly ahead of the HB implicit layout "
      "(fanout 9 vs 8 -> shallower tree).\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
