// Figure 21 (Appendix B.3): concurrent search and update queries.
//
// Query-processing threads resolve a stream with a growing fraction of
// update queries on the regular HB+-tree, comparing synchronous and
// asynchronous I-segment maintenance. Expected: the synchronous
// approach's throughput decays faster with the update ratio (each
// modified inner node pays a transfer-initialization latency); even the
// 100%-search point runs below the pure lookup methods because of the
// mutex/synchronization overhead in the query-processing threads.

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "hybrid/batch_update.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 22);
  const std::size_t ops = std::size_t{1} << args.GetInt("ops_log2", 17);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);

  Table table({"update %", "sync Mops", "async Mops", "sync/async"});
  table.PrintTitle("concurrent search/update (paper Fig. 21)");
  table.PrintHeader();
  for (double ratio : {0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double mops[2];
    int i = 0;
    for (UpdateMethod method :
         {UpdateMethod::kSynchronized, UpdateMethod::kAsyncParallel}) {
      SimPlatform sim(platform);
      PageRegistry registry;
      HBRegularTree<Key64>::Config config;
      // Near-full leaf lines: the steady state of a long-running index,
      // where most inserts redistribute lines and touch the inner node.
      config.tree.leaf_fill = 0.95;
      HBRegularTree<Key64> tree(config, &registry, &sim.device,
                                &sim.transfer);
      HBTREE_CHECK(tree.Build(data));

      auto searches = MakeLookupQueries(data, seed + 1);
      searches.resize(std::min(ops, searches.size()));
      auto updates = MakeUpdateBatch<Key64>(
          data, static_cast<std::size_t>(ops * ratio) + 1,
          /*insert_fraction=*/0.5, seed + 2);

      BatchUpdateConfig uconfig;
      uconfig.model_threads = platform.cpu.threads;
      uconfig.cpu_update_us = EstimateUpdateCostUs(tree.host_tree(),
                                                   searches, platform,
                                                   registry);
      const double cpu_search_us = uconfig.cpu_update_us / 1.3;
      MixedWorkloadStats stats =
          RunMixedWorkload(tree, searches, updates, ratio, method, uconfig,
                           cpu_search_us);
      mops[i++] = stats.mops();
    }
    table.PrintRow({Table::Num(ratio * 100, 0), Table::Num(mops[0], 2),
                    Table::Num(mops[1], 2),
                    Table::Num(mops[0] / mops[1], 2)});
  }
  std::printf(
      "\nPaper expectation: synchronous throughput decays faster as the "
      "update share grows; asynchronous holds up better.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
