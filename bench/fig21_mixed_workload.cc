// Figure 21 (Appendix B.3): concurrent search and update queries.
//
// Query-processing threads resolve a stream with a growing fraction of
// update queries on the regular HB+-tree, comparing synchronous and
// asynchronous I-segment maintenance. Expected: the synchronous
// approach's throughput decays faster with the update ratio (each
// modified inner node pays a transfer-initialization latency); even the
// 100%-search point runs below the pure lookup methods because of the
// mutex/synchronization overhead in the query-processing threads.

//
// Flags: --n_log2, --ops_log2, --platform, --seed, plus the shared
// observability pair: --metrics_json=<path> (hbtree.bench.v1 rows with
// the default metrics registry embedded) and --trace_out=<path> (Chrome
// trace JSON — update.batch/update.sync spans show the maintenance
// work; load in Perfetto).

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "bench_support/report.h"
#include "hybrid/batch_update.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 22);
  const std::size_t ops = std::size_t{1} << args.GetInt("ops_log2", 17);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);

  MaybeStartTrace(args);
  BenchReport report("fig21_mixed_workload");
  report.Meta("platform", platform.name);
  report.MetaNum("n", static_cast<double>(n));
  report.MetaNum("ops", static_cast<double>(ops));
  report.MetaNum("seed", static_cast<double>(seed));
  for (double ratio : {0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double mops[2];
    int i = 0;
    for (UpdateMethod method :
         {UpdateMethod::kSynchronized, UpdateMethod::kAsyncParallel}) {
      SimPlatform sim(platform);
      sim.device.set_metrics_registry(&obs::MetricsRegistry::Default());
      PageRegistry registry;
      HBRegularTree<Key64>::Config config;
      // Near-full leaf lines: the steady state of a long-running index,
      // where most inserts redistribute lines and touch the inner node.
      config.tree.leaf_fill = 0.95;
      HBRegularTree<Key64> tree(config, &registry, &sim.device,
                                &sim.transfer);
      HBTREE_CHECK(tree.Build(data));

      auto searches = MakeLookupQueries(data, seed + 1);
      searches.resize(std::min(ops, searches.size()));
      auto updates = MakeUpdateBatch<Key64>(
          data, static_cast<std::size_t>(ops * ratio) + 1,
          /*insert_fraction=*/0.5, seed + 2);

      BatchUpdateConfig uconfig;
      uconfig.model_threads = platform.cpu.threads;
      uconfig.cpu_update_us = EstimateUpdateCostUs(tree.host_tree(),
                                                   searches, platform,
                                                   registry);
      const double cpu_search_us = uconfig.cpu_update_us / 1.3;
      MixedWorkloadStats stats =
          RunMixedWorkload(tree, searches, updates, ratio, method, uconfig,
                           cpu_search_us);
      mops[i++] = stats.mops();
    }
    report.AddRow()
        .Num("update_pct", ratio * 100, 0)
        .Num("sync_mops", mops[0], 2)
        .Num("async_mops", mops[1], 2)
        .Num("sync_over_async", mops[0] / mops[1], 2);
  }
  report.PrintTable("concurrent search/update (paper Fig. 21)");
  MaybeWriteTrace(args);
  std::printf(
      "\nPaper expectation: synchronous throughput decays faster as the "
      "update share grows; asynchronous holds up better.\n");
  if (args.Has("metrics_json")) {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Default().Collect();
    if (!report.WriteJson(args.GetString("metrics_json", ""), &snapshot)) {
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
