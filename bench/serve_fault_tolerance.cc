// Fault-tolerance bench: serving throughput and tail latency as the
// injected device fault rate sweeps {0, 1%, 10%}. For each rate a fresh
// server runs the same concurrent lookup+update workload while transfer
// and kernel faults fire; the table reports sustained reads/s, wall-
// clock p50/p99, how many faults the retry layer absorbed, and the
// circuit-breaker activity (opens/closes, CPU-fallback buckets) behind
// the degraded-mode throughput.
//
// Flags: --n_log2 (tree size), --clients (lookup threads), --lookups
// (per client), --updates (total update stream), --bucket_log2,
// --retries (device retry budget), --deadline_us (per-request deadline,
// 0 = none), --shards / --read_workers (serving topology; creation
// fails loudly if the per-shard trees exceed the device arena backing),
// --platform, --seed, --metrics_json (hbtree.bench.v1 JSON
// with the last run's metrics embedded and its stage waterfall under
// "stages"), --trace_out (Chrome trace JSON of the last — highest fault
// rate — run: breaker open/close show up as instants, bucket stages on
// the modelled resource tracks). Each run records its own trace session
// so exemplars and the waterfall work without flags.

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/report.h"
#include "bench_support/seeds.h"
#include "bench_support/serve_runner.h"
#include "bench_support/table.h"
#include "core/workload.h"
#include "obs/span_aggregator.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace hbtree::bench {
namespace {

struct RateResult {
  double fault_rate = 0;
  serve::ServeStats stats;
};

int Main(int argc, char** argv) {
  Args args(argc, argv);
  args.PrintActive();
  const sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 20);
  const int clients = static_cast<int>(args.GetInt("clients", 4));
  const std::size_t lookups_per_client =
      static_cast<std::size_t>(args.GetInt("lookups", 48 * 1024));
  const std::size_t total_updates =
      static_cast<std::size_t>(args.GetInt("updates", 24 * 1024));
  const int bucket = 1 << args.GetInt("bucket_log2", 12);
  const int retries = static_cast<int>(args.GetInt("retries", 3));
  const auto deadline =
      std::chrono::microseconds(args.GetInt("deadline_us", 0));
  const SeedPlan seeds(static_cast<std::uint64_t>(args.GetInt("seed", 1)));

  std::printf("building %zu-key tree and calibrating on %s...\n", n,
              platform.name.c_str());
  auto data = GenerateDataset<Key64>(n, seeds.dataset);
  serve::ServerOptions base_options =
      CalibratedServerOptions(platform, data, seeds.calibrate, bucket);
  base_options.pipeline.max_device_retries = retries;
  base_options.pipeline_depth =
      static_cast<int>(args.GetInt("pipeline_depth", 4));
  base_options.default_deadline = deadline;
  base_options.num_shards = static_cast<int>(args.GetInt("shards", 1));
  base_options.num_read_workers =
      static_cast<int>(args.GetInt("read_workers", 1));
  auto queries = MakeLookupQueries(data, seeds.queries);
  auto updates = MakeUpdateBatch(data, total_updates,
                                 /*insert_fraction=*/0.7, seeds.updates);

  const double rates[] = {0.0, 0.01, 0.10};
  std::vector<RateResult> results;
  obs::MetricsSnapshot last_metrics;
  obs::StageWaterfall last_stages;

  for (const double rate : rates) {
    // Per-run session: exemplars and the stage waterfall need live spans
    // even without --trace_out; Start() clears the previous run.
    obs::TraceSession::Start();
    serve::ServerOptions options = base_options;
    if (rate > 0) {
      options.fault = fault::FaultConfig::Transfers(rate, seeds.faults);
      options.fault.site(fault::Site::kKernel).probability = rate / 2;
    }
    Status status;
    auto server_ptr = serve::Server<Key64>::Create(options, data, &status);
    if (server_ptr == nullptr) {
      std::fprintf(stderr,
                   "server creation failed (shards=%d, read_workers=%d): %s\n",
                   options.num_shards, options.num_read_workers,
                   status.message().c_str());
      return 1;
    }
    serve::Server<Key64>& server = *server_ptr;

    std::thread update_client([&] {
      std::vector<std::future<serve::UpdateResult>> pending;
      pending.reserve(updates.size());
      for (const auto& update : updates) {
        pending.push_back(server.SubmitUpdate(update));
      }
      for (auto& f : pending) f.get();
    });

    std::vector<std::thread> lookup_clients;
    std::atomic<std::uint64_t> served{0};
    for (int c = 0; c < clients; ++c) {
      lookup_clients.emplace_back([&, c] {
        std::vector<std::future<serve::ReadResult<Key64>>> window;
        window.reserve(1024);
        std::uint64_t local_served = 0;
        for (std::size_t i = 0; i < lookups_per_client; ++i) {
          window.push_back(server.SubmitLookup(
              queries[(c * lookups_per_client + i) % queries.size()]));
          if (window.size() == 1024) {
            for (auto& f : window) local_served += f.get().status.ok();
            window.clear();
          }
        }
        for (auto& f : window) local_served += f.get().status.ok();
        served.fetch_add(local_served);
      });
    }

    for (auto& t : lookup_clients) t.join();
    update_client.join();
    server.Shutdown();
    obs::TraceSession::Stop();

    RateResult result;
    result.fault_rate = rate;
    result.stats = server.Stats();
    results.push_back(result);
    last_metrics = server.metrics().Collect();
    last_stages = obs::SpanAggregator::FromSession();
    std::printf("fault rate %.2f: %llu/%zu lookups served ok\n", rate,
                static_cast<unsigned long long>(served.load()),
                static_cast<std::size_t>(clients) * lookups_per_client);
  }
  MaybeWriteTrace(args);  // last run's session; the loop already stopped it

  BenchReport report("serve_fault_tolerance");
  report.Meta("platform", platform.name);
  report.MetaNum("n", static_cast<double>(n));
  report.MetaNum("clients", clients);
  report.MetaNum("retries", retries);
  report.MetaNum("deadline_us", static_cast<double>(deadline.count()));
  seeds.Record(report);
  for (const RateResult& r : results) {
    BenchReport::Row& row = report.AddRow();
    row.Num("fault_rate", r.fault_rate, 2);
    report.AddServeStatsRow(row, r.stats);
  }
  report.SetStages(last_stages);
  report.PrintTable("serving under injected device faults");
  if (args.Has("metrics_json")) {
    if (!report.WriteJson(args.GetString("metrics_json", ""),
                          &last_metrics)) {
      return 1;
    }
  }
  std::printf(
      "\nretry budget %d per device op; breaker threshold %d, probe "
      "interval %d; deadline %lld us (0 = none)\n",
      retries, base_options.breaker_failure_threshold,
      base_options.breaker_probe_interval,
      static_cast<long long>(deadline.count()));
  return 0;
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) { return hbtree::bench::Main(argc, argv); }
