// Extension (paper Section 7, future work #1): employing GPU cycles for
// index maintenance — here, rebuilding the implicit HB+-tree's I-segment
// *on the device* from uploaded leaf maxima instead of building it on the
// CPU and shipping the whole segment over PCIe.
//
// Expected: the maxima upload moves ~12% less data than the full
// I-segment (the bottom inner level nearly equals the maxima array), the
// build kernel itself is bandwidth-trivial, and the CPU is relieved of
// the I-segment construction pass — a modest but real improvement of
// Figure 15's refresh path.

#include <cstdio>

#include "bench_support/harness.h"
#include "hybrid/gpu_build.h"
#include "hybrid/hb_implicit.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 20, 24, 1);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s\n", platform.name.c_str());
  Table table({"tuples", "cpu+upload ms", "gpu-assist ms", "speedup",
               "bytes saved"});
  table.PrintTitle("GPU-assisted I-segment rebuild (Section 7 extension)");
  table.PrintHeader();
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<Key64>(n, seed);
    SimPlatform sim(platform);
    PageRegistry registry;
    HBImplicitTree<Key64>::Config config;
    HBImplicitTree<Key64> tree(config, &registry, &sim.device,
                               &sim.transfer);
    HBTREE_CHECK(tree.Build(data));
    const auto& host = tree.host_tree();

    // Baseline: CPU builds the I-segment (modelled as in Figure 15) and
    // uploads it whole.
    RebuildModel model = ModelImplicitRebuild(host.l_segment_bytes(),
                                              host.i_segment_bytes(),
                                              platform);
    const double baseline_us = model.i_build_us + model.transfer_us;

    // GPU-assisted: upload leaf maxima, build on device.
    const std::uint64_t before = sim.transfer.bytes_h2d();
    const double assisted_us = BuildISegmentOnDevice<Key64>(
        host, sim.device, sim.transfer, tree.device_nodes());
    const std::uint64_t maxima_bytes = sim.transfer.bytes_h2d() - before;

    table.PrintRow(
        {Table::Log2Size(n), Table::Num(baseline_us / 1e3, 2),
         Table::Num(assisted_us / 1e3, 2),
         Table::Num(baseline_us / assisted_us, 2) + "x",
         Table::Num((host.i_segment_bytes() - maxima_bytes) / 1e6, 1) +
             " MB"});
  }
  std::printf(
      "\nExpectation: a modest constant-factor win — less PCIe traffic and "
      "no CPU I-segment pass — bounded by the maxima upload, which is "
      "~7/8 of the I-segment for fanout 8.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
