// Figure 15 (Section 6.3): implicit HB+-tree update cost.
//
// The implicit tree cannot apply individual updates: a batch rebuilds the
// whole tree (L-segment, then I-segment) and re-uploads the I-segment to
// device memory. The bars break the cost into those three phases; the
// paper finds the transfer is only 3-7% of the total rebuild cost —
// i.e. hybridization adds little to the implicit tree's update price.

#include <cstdio>

#include "bench_support/hb_runner.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 20, 24, 1);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s\n", platform.name.c_str());
  Table table({"tuples", "L-build ms", "I-build ms", "transfer ms",
               "transfer %"});
  table.PrintTitle("implicit HB+-tree rebuild phases (paper Fig. 15)");
  table.PrintHeader();
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<Key64>(n, seed);
    SimPlatform sim(platform);
    PageRegistry registry;
    HBImplicitTree<Key64>::Config config;
    HBImplicitTree<Key64> tree(config, &registry, &sim.device,
                               &sim.transfer);
    // Functional rebuild + re-upload (device mirror stays consistent).
    HBTREE_CHECK(tree.Build(data));
    const double measured_transfer_us = tree.SyncISegment();

    RebuildModel model = ModelImplicitRebuild(
        tree.host_tree().l_segment_bytes(),
        tree.host_tree().i_segment_bytes(), platform);
    const double total_us =
        model.l_build_us + model.i_build_us + measured_transfer_us;
    table.PrintRow({Table::Log2Size(n), Table::Num(model.l_build_us / 1e3, 2),
                    Table::Num(model.i_build_us / 1e3, 2),
                    Table::Num(measured_transfer_us / 1e3, 2),
                    Table::Num(100.0 * measured_transfer_us / total_us, 1)});
  }
  std::printf(
      "\nPaper expectation: I-segment transfer is 3-7%% of the total "
      "rebuild cost.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
