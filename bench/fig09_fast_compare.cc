// Figure 9 (Section 6.2): comparison with FAST.
//
// The implicit CPU-optimized B+-tree against our reimplementation of FAST
// (Kim et al.), both searched with SIMD and software pipelining on the
// same simulated platform. The paper reports the B+-tree ~1.3X faster on
// average — its 8-key-per-line fanout uses each fetched cache line better
// than FAST's 3-level binary blocks.

#include <cstdio>

#include "bench_support/harness.h"
#include "cpubtree/implicit_btree.h"
#include "fast/fast_tree.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 18, 23, 1);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s (%s)\n", platform.name.c_str(),
              platform.cpu.name.c_str());
  Table table({"tuples", "B+tree MQPS", "FAST MQPS", "speedup",
               "B+ acc/q", "FAST acc/q"});
  table.PrintTitle("implicit B+-tree vs FAST (paper Fig. 9)");
  table.PrintHeader();

  double speedup_sum = 0;
  int rows = 0;
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<Key64>(n, seed);
    auto queries = MakeLookupQueries(data, seed + 1);

    PageRegistry btree_registry;
    ImplicitBTree<Key64>::Config btree_config;
    ImplicitBTree<Key64> btree(btree_config, &btree_registry);
    btree.Build(data);
    SearchMeasurement mb =
        MeasureCpuSearch(btree, queries, platform, btree_registry,
                         btree_config.search_algo);

    PageRegistry fast_registry;
    FastTree<Key64>::Config fast_config;
    FastTree<Key64> fast(fast_config, &fast_registry);
    fast.Build(data);
    // FAST's in-block search is SIMD too; charge the linear-SIMD rate.
    SearchMeasurement mf =
        MeasureCpuSearch(fast, queries, platform, fast_registry,
                         NodeSearchAlgo::kLinearSimd);

    const double speedup = mb.estimate.mqps / mf.estimate.mqps;
    speedup_sum += speedup;
    ++rows;
    table.PrintRow({Table::Log2Size(n), Table::Num(mb.estimate.mqps, 1),
                    Table::Num(mf.estimate.mqps, 1),
                    Table::Num(speedup, 2) + "x",
                    Table::Num(mb.profile.AccessesPerQuery(), 2),
                    Table::Num(mf.profile.AccessesPerQuery(), 2)});
  }
  std::printf("\naverage speedup: %.2fx (paper: ~1.3x)\n",
              speedup_sum / rows);
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
