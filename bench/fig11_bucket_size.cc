// Figure 11 (Section 6.3): bucket size sweep.
//
// Throughput and latency of the double-buffered HB+-tree for bucket
// sizes 8K..64K. Expected: throughput grows with the bucket size for the
// implicit tree and saturates at ~16K for the regular tree, while average
// latency keeps growing (~1.7X at 32K, ~2.7X at 64K vs 16K) — which is
// why the paper settles on M = 16K.

#include <cstdio>

#include "bench_support/hb_runner.h"

namespace hbtree::bench {
namespace {

template <typename Bench, typename K>
void RunTree(const char* name, SimPlatform* sim,
             const std::vector<KeyValue<K>>& data,
             const std::vector<K>& queries, Table& table) {
  Bench bench(sim, data, queries);
  double latency_16k = 0;
  for (int bucket : {8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024}) {
    PipelineStats stats = bench.Run(
        queries, bench.MakeConfig(BucketStrategy::kDoubleBuffered, bucket));
    if (bucket == 16 * 1024) latency_16k = stats.avg_latency_us;
    table.PrintRow({name, std::to_string(bucket / 1024) + "K",
                    Table::Num(stats.mqps, 1),
                    Table::Num(stats.avg_latency_us, 1),
                    latency_16k > 0
                        ? Table::Num(stats.avg_latency_us / latency_16k, 2) +
                              "x"
                        : "-"});
  }
}

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 20);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu\n", platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);
  auto queries = MakeLookupQueries(data, seed + 1);
  queries.resize(std::min(q, queries.size()));

  Table table({"tree", "bucket", "MQPS", "latency us", "vs 16K lat"});
  table.PrintTitle("bucket size sweep (paper Fig. 11)");
  table.PrintHeader();
  {
    SimPlatform sim(platform);
    RunTree<HbImplicitBench<Key64>, Key64>("implicit", &sim, data, queries,
                                           table);
  }
  {
    SimPlatform sim(platform);
    RunTree<HbRegularBench<Key64>, Key64>("regular", &sim, data, queries,
                                          table);
  }
  std::printf(
      "\nPaper expectation: implicit throughput grows with M; regular flat "
      "beyond 16K; latency ~1.7x at 32K and ~2.7x at 64K.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
