// Figure 18 (Section 6.5): load balancing on a CPU-bound-unfriendly
// platform.
//
// M2 pairs a capable quad-core CPU with a weak mobile GPU behind a slow
// link. Expected: without load balancing the HB+-tree runs ~25% *slower*
// than the CPU-optimized tree (communication overhead exceeds the GPU's
// help); the (D, R) discovery algorithm (Algorithm 1) moves the top
// inner levels back to the CPU, improving the HB+-tree by ~65% and
// beating the CPU tree by up to 32% (implicit) / 65% (regular).

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"
#include "hybrid/load_balancer.h"

namespace hbtree::bench {
namespace {

template <typename CpuTree, typename Bench, typename K>
void RunTree(const char* name, const sim::PlatformSpec& platform,
             const std::vector<KeyValue<K>>& data,
             const std::vector<K>& queries, Table& table) {
  // CPU-optimized baseline.
  PageRegistry cpu_registry;
  typename CpuTree::Config cpu_config;
  CpuTree cpu_tree(cpu_config, &cpu_registry);
  cpu_tree.Build(data);
  auto cpu = MeasureCpuSearch(cpu_tree, queries, platform, cpu_registry,
                              cpu_config.search_algo);

  // HB+-tree without load balancing.
  SimPlatform sim(platform);
  Bench bench(&sim, data, queries);
  PipelineStats plain = bench.Run(queries, bench.MakeConfig());

  // Discover (D, R) on a sample, then run load-balanced.
  std::vector<K> sample(queries.begin(),
                        queries.begin() +
                            std::min<std::size_t>(queries.size(), 16384));
  LoadBalanceSetting setting =
      DiscoverLoadBalance(bench.tree(), sample.data(), sample.size(),
                          bench.MakeConfig());
  PipelineStats balanced = bench.Run(
      queries, WithLoadBalance(bench.MakeConfig(), setting));

  table.PrintRow({name, Table::Num(cpu.estimate.mqps, 1),
                  Table::Num(plain.mqps, 1), Table::Num(balanced.mqps, 1),
                  "D=" + std::to_string(setting.d) +
                      " R=" + Table::Num(setting.r, 2),
                  Table::Num(balanced.mqps / plain.mqps, 2) + "x",
                  Table::Num(balanced.mqps / cpu.estimate.mqps, 2) + "x"});
}

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m2");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 19);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s (%s + %s)\n", platform.name.c_str(),
              platform.cpu.name.c_str(), platform.gpu.name.c_str());
  auto data = GenerateDataset<Key64>(n, seed);
  auto queries = MakeLookupQueries(data, seed + 1);
  queries.resize(std::min(q, queries.size()));

  Table table({"tree", "cpu MQPS", "hb MQPS", "hb-lb MQPS", "setting",
               "lb gain", "vs cpu"});
  table.PrintTitle("load balancing on M2 (paper Fig. 18)");
  table.PrintHeader();
  RunTree<ImplicitBTree<Key64>, HbImplicitBench<Key64>, Key64>(
      "implicit", platform, data, queries, table);
  RunTree<RegularBTree<Key64>, HbRegularBench<Key64>, Key64>(
      "regular", platform, data, queries, table);
  std::printf(
      "\nPaper expectation: plain HB ~25%% below the CPU tree; load "
      "balancing +65%%; balanced HB up to +32%% (implicit) / +65%% "
      "(regular) over the CPU tree.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
