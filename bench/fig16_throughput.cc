// Figure 16 (Section 6.4): HB+-tree vs CPU-optimized B+-tree — the
// paper's headline result.
//
// (a) 64-bit search throughput, (b) 32-bit search throughput,
// (c) 64-bit latency, across tree sizes on M1. Expected: the implicit
// HB+-tree plateaus (CPU-bound leaf search), the regular HB+-tree
// declines slowly (GPU-bound at scale), the CPU trees decline with size;
// the hybrid wins by ~2.4X (64-bit) / ~2.1X (32-bit) on average, at ~67X
// higher per-query latency (Section 6.4 explains the ratio via the
// number of in-flight queries each platform needs).

//
// Flags: --sizes, --queries_log2, --platform, --seed, plus the shared
// observability pair: --metrics_json=<path> (hbtree.bench.v1 rows with
// the default metrics registry — device transfer/kernel counters —
// embedded) and --trace_out=<path> (Chrome trace JSON of the modelled
// pipeline stages; load in Perfetto to see H2D/kernel/D2H overlap).

#include <cmath>
#include <cstdio>

#include "bench_support/hb_runner.h"
#include "bench_support/report.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"

namespace hbtree::bench {
namespace {

template <typename K>
struct Row {
  double cpu_implicit_mqps, cpu_regular_mqps;
  double hb_implicit_mqps, hb_regular_mqps;
  double cpu_latency_us, hb_latency_us;
};

template <typename K>
Row<K> MeasureSize(const sim::PlatformSpec& platform, std::size_t n,
                   std::size_t q, std::uint64_t seed) {
  Row<K> row{};
  auto data = GenerateDataset<K>(n, seed);
  auto queries = MakeLookupQueries(data, seed + 1);
  if (queries.size() > q) queries.resize(q);

  {
    PageRegistry registry;
    typename ImplicitBTree<K>::Config config;
    ImplicitBTree<K> tree(config, &registry);
    tree.Build(data);
    auto m = MeasureCpuSearch(tree, queries, platform, registry,
                              config.search_algo);
    row.cpu_implicit_mqps = m.estimate.mqps;
    row.cpu_latency_us = m.estimate.latency_us;
  }
  {
    PageRegistry registry;
    typename RegularBTree<K>::Config config;
    RegularBTree<K> tree(config, &registry);
    tree.Build(data);
    auto m = MeasureCpuSearch(tree, queries, platform, registry,
                              config.search_algo);
    row.cpu_regular_mqps = m.estimate.mqps;
  }
  {
    SimPlatform sim(platform);
    sim.device.set_metrics_registry(&obs::MetricsRegistry::Default());
    HbImplicitBench<K> bench(&sim, data, queries);
    PipelineStats stats = bench.Run(queries, bench.MakeConfig());
    row.hb_implicit_mqps = stats.mqps;
    row.hb_latency_us = stats.avg_latency_us;
  }
  {
    SimPlatform sim(platform);
    sim.device.set_metrics_registry(&obs::MetricsRegistry::Default());
    HbRegularBench<K> bench(&sim, data, queries);
    PipelineStats stats = bench.Run(queries, bench.MakeConfig());
    row.hb_regular_mqps = stats.mqps;
  }
  return row;
}

template <typename K>
void RunWidth(const char* width, const sim::PlatformSpec& platform,
              const std::vector<std::size_t>& sizes, std::size_t q,
              std::uint64_t seed, bool print_latency, BenchReport* report) {
  Table table({"tuples", "cpu-impl", "cpu-reg", "hb-impl", "hb-reg",
               "best ratio"});
  table.PrintTitle(std::string("search throughput MQPS, ") + width +
                   " (paper Fig. 16a/16b)");
  table.PrintHeader();
  std::vector<Row<K>> rows;
  double ratio_sum = 0;
  for (std::size_t n : sizes) {
    Row<K> row = MeasureSize<K>(platform, n, q, seed);
    rows.push_back(row);
    const double best_cpu =
        std::max(row.cpu_implicit_mqps, row.cpu_regular_mqps);
    const double best_hb =
        std::max(row.hb_implicit_mqps, row.hb_regular_mqps);
    ratio_sum += best_hb / best_cpu;
    BenchReport::Row& out = report->AddRow();
    out.Text("width", width)
        .Num("tuples_log2", std::log2(static_cast<double>(n)), 0)
        .Num("cpu_impl_mqps", row.cpu_implicit_mqps, 1)
        .Num("cpu_reg_mqps", row.cpu_regular_mqps, 1)
        .Num("hb_impl_mqps", row.hb_implicit_mqps, 1)
        .Num("hb_reg_mqps", row.hb_regular_mqps, 1)
        .Num("best_ratio", best_hb / best_cpu, 2);
    if (print_latency) {
      out.Num("cpu_latency_us", row.cpu_latency_us, 2)
          .Num("hb_latency_us", row.hb_latency_us, 1);
    }
    table.PrintRow({Table::Log2Size(n), Table::Num(row.cpu_implicit_mqps, 1),
                    Table::Num(row.cpu_regular_mqps, 1),
                    Table::Num(row.hb_implicit_mqps, 1),
                    Table::Num(row.hb_regular_mqps, 1),
                    Table::Num(best_hb / best_cpu, 2) + "x"});
  }
  std::printf("average best-HB / best-CPU: %.2fx\n",
              ratio_sum / sizes.size());

  if (print_latency) {
    Table lat({"tuples", "cpu us", "hb us", "ratio"});
    lat.PrintTitle("query latency (paper Fig. 16c)");
    lat.PrintHeader();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      lat.PrintRow({Table::Log2Size(sizes[i]),
                    Table::Num(rows[i].cpu_latency_us, 2),
                    Table::Num(rows[i].hb_latency_us, 1),
                    Table::Num(rows[i].hb_latency_us /
                                   rows[i].cpu_latency_us, 0) + "x"});
    }
  }
}

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 20, 24, 1);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 19);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s (%s + %s)\n", platform.name.c_str(),
              platform.cpu.name.c_str(), platform.gpu.name.c_str());
  MaybeStartTrace(args);
  BenchReport report("fig16_throughput");
  report.Meta("platform", platform.name);
  report.MetaNum("queries", static_cast<double>(q));
  report.MetaNum("seed", static_cast<double>(seed));
  RunWidth<Key64>("64-bit", platform, sizes, q, seed,
                  /*print_latency=*/true, &report);
  RunWidth<Key32>("32-bit", platform, sizes, q, seed,
                  /*print_latency=*/false, &report);
  MaybeWriteTrace(args);
  std::printf(
      "\nPaper expectation: implicit HB+-tree flat at ~240 MQPS "
      "(CPU-bound); regular HB+-tree declines with size; hybrid beats the "
      "CPU tree ~2.4x (64-bit) / ~2.1x (32-bit); HB latency ~67x CPU.\n");
  if (args.Has("metrics_json")) {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Default().Collect();
    if (!report.WriteJson(args.GetString("metrics_json", ""), &snapshot)) {
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
