// Figure 13 (Section 6.3): regular HB+-tree update methods.
//
// (a) update throughput of the single-threaded asynchronous, parallel
//     asynchronous, and synchronized methods across tree sizes — the
//     I-segment transfer is excluded for the asynchronous methods, as in
//     the paper; parallel async is expected ~3X over single-threaded,
//     while the synchronized method is bounded by per-node transfer
//     initialization latency.
// (b) I-segment synchronization time per tree size.

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "hybrid/batch_update.h"

namespace hbtree::bench {
namespace {

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  auto sizes = SizeSweepFromArgs(args, 20, 24, 2);
  const std::size_t batch_size = args.GetInt("batch", 128 * 1024);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, batch=%zu updates\n", platform.name.c_str(),
              batch_size);
  Table table({"tuples", "method", "Mupd/s", "vs async-1t", "modified"});
  table.PrintTitle("update method throughput (paper Fig. 13a)");
  table.PrintHeader();
  Table sync_table({"tuples", "I-seg MB", "sync ms"});

  std::vector<std::pair<std::size_t, double>> sync_times;
  for (std::size_t n : sizes) {
    auto data = GenerateDataset<Key64>(n, seed);
    auto probes = MakeLookupQueries(data, seed + 1);
    probes.resize(std::min<std::size_t>(probes.size(), 1 << 16));

    double base_rate = 0;
    for (UpdateMethod method :
         {UpdateMethod::kAsyncSingleThread, UpdateMethod::kAsyncParallel,
          UpdateMethod::kSynchronized}) {
      SimPlatform sim(platform);
      PageRegistry registry;
      HBRegularTree<Key64>::Config config;
      config.tree.leaf_fill = 0.7;
      HBRegularTree<Key64> tree(config, &registry, &sim.device,
                                &sim.transfer);
      HBTREE_CHECK(tree.Build(data));

      BatchUpdateConfig uconfig;
      uconfig.real_threads = 2;
      uconfig.model_threads = platform.cpu.threads;
      uconfig.cpu_update_us = EstimateUpdateCostUs(tree.host_tree(), probes,
                                                   platform, registry);
      auto batch = MakeUpdateBatch<Key64>(data, batch_size,
                                          /*insert_fraction=*/0.5, seed + 2);
      BatchUpdateStats stats = RunBatchUpdate(tree, batch, method, uconfig);
      // Figure 13a excludes the bulk I-segment transfer for async methods.
      const double time_us = method == UpdateMethod::kSynchronized
                                 ? stats.total_us
                                 : stats.update_us;
      const double mups = batch.size() / time_us;
      if (base_rate == 0) base_rate = mups;
      table.PrintRow({Table::Log2Size(n), UpdateMethodName(method),
                      Table::Num(mups, 2),
                      Table::Num(mups / base_rate, 2) + "x",
                      std::to_string(stats.modified_nodes)});
      if (method == UpdateMethod::kAsyncSingleThread) {
        sync_times.emplace_back(n, stats.sync_us);
      }
    }
  }

  sync_table.PrintTitle("I-segment synchronization time (paper Fig. 13b)");
  sync_table.PrintHeader();
  for (auto [n, sync_us] : sync_times) {
    const double i_seg_mb =
        static_cast<double>(n) / 256 * sizeof(RegularInnerHot<Key64>) / 1e6;
    sync_table.PrintRow({Table::Log2Size(n), Table::Num(i_seg_mb, 1),
                         Table::Num(sync_us / 1e3, 2)});
  }
  std::printf(
      "\nPaper expectation: parallel async ~3x single-threaded; "
      "synchronized bounded by per-node transfer latency; I-segment sync "
      "time grows linearly with tree size.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
