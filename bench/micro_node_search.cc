// Microbenchmark (real wall clock, google-benchmark): intra-node search
// algorithms of Section 4.2 — sequential vs linear AVX vs hierarchical
// AVX, for both key widths. This is the one place in the suite where the
// host machine's actual SIMD units are measured directly; it is also the
// ablation for DESIGN.md's "index-line" choice: the regular node's
// three-line search vs a naive scan over all key lines.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/random.h"
#include "core/simd.h"
#include "core/types.h"

namespace hbtree {
namespace {

template <typename K>
std::vector<K> MakeSortedLine(int count, Rng& rng) {
  std::vector<K> keys(count);
  K v = 0;
  for (auto& key : keys) {
    v = static_cast<K>(v + 1 + rng.NextBounded(1000));
    key = v;
  }
  return keys;
}

template <typename K, NodeSearchAlgo algo>
void BM_NodeSearch(benchmark::State& state) {
  Rng rng(7);
  constexpr int kPer = KeyTraits<K>::kPerCacheLine;
  auto keys = MakeSortedLine<K>(kPer, rng);
  std::vector<K> probes(1024);
  for (auto& probe : probes) {
    probe = static_cast<K>(rng.NextBounded(keys.back() + 10));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    int r = SearchCacheLine<K>(keys.data(), probes[i++ & 1023], algo);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_NodeSearch<Key64, NodeSearchAlgo::kSequential>);
BENCHMARK(BM_NodeSearch<Key64, NodeSearchAlgo::kLinearSimd>);
BENCHMARK(BM_NodeSearch<Key64, NodeSearchAlgo::kHierarchicalSimd>);
BENCHMARK(BM_NodeSearch<Key32, NodeSearchAlgo::kSequential>);
BENCHMARK(BM_NodeSearch<Key32, NodeSearchAlgo::kLinearSimd>);
BENCHMARK(BM_NodeSearch<Key32, NodeSearchAlgo::kHierarchicalSimd>);

/// Ablation: the fat inner node's 3-line search (index line -> key line)
/// vs scanning all key lines of a 64-fanout node.
void BM_FatNodeIndexedSearch(benchmark::State& state) {
  Rng rng(11);
  auto keys = MakeSortedLine<Key64>(64, rng);
  Key64 indexes[8];
  for (int s = 0; s < 8; ++s) indexes[s] = keys[s * 8 + 7];
  std::vector<Key64> probes(1024);
  for (auto& probe : probes) {
    probe = static_cast<Key64>(rng.NextBounded(keys.back()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    Key64 q = probes[i++ & 1023];
    int s = SearchLine64LinearAvx(indexes, q);
    int j = SearchLine64LinearAvx(keys.data() + s * 8, q);
    benchmark::DoNotOptimize(s * 8 + j);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatNodeIndexedSearch);

void BM_FatNodeFullScan(benchmark::State& state) {
  Rng rng(11);
  auto keys = MakeSortedLine<Key64>(64, rng);
  std::vector<Key64> probes(1024);
  for (auto& probe : probes) {
    probe = static_cast<Key64>(rng.NextBounded(keys.back()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    Key64 q = probes[i++ & 1023];
    int c = 0;
    for (int line = 0; line < 8; ++line) {
      c += SearchLine64LinearAvx(keys.data() + line * 8, q);
    }
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatNodeFullScan);

}  // namespace
}  // namespace hbtree

BENCHMARK_MAIN();
