// Figure 17 (Section 6.4): range query throughput.
//
// Range queries retrieving 1..32 matching keys on the CPU-optimized and
// HB+-trees (implicit and regular). Expected: as the match count grows,
// leaf traversal dominates, implicit and regular converge, and the
// HB+-tree's advantage shrinks from >80% (<=8 matches) to ~22% (32).

#include <cstdio>

#include "bench_support/hb_runner.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"

namespace hbtree::bench {
namespace {

/// CPU tree: modelled throughput of full range scans.
template <typename Tree, typename K>
double CpuRangeMqps(const Tree& tree, const std::vector<RangeQuery<K>>& rq,
                    const sim::PlatformSpec& platform,
                    const PageRegistry& registry) {
  std::vector<KeyValue<K>> out(64);
  auto m = MeasureCpuOp(
      platform, registry, tree.config().search_algo, ModelOptions{},
      [&](sim::CpuTracer& tracer, std::size_t i) {
        const auto& query = rq[i % rq.size()];
        tree.RangeScan(query.first_key, query.match_count, out.data(),
                       &tracer);
      });
  return m.estimate.mqps;
}

/// HB tree: GPU resolves the start position, CPU scans leaves; the CPU
/// share per query is the leaf scan, calibrated per match count.
template <typename Bench, typename HostTree, typename K, typename StartFn>
double HbRangeMqps(Bench& bench, const HostTree& host,
                   const std::vector<RangeQuery<K>>& rq,
                   const std::vector<K>& start_keys,
                   const sim::PlatformSpec& platform, StartFn&& scan) {
  // Calibrate the leaf-scan rate for this match count.
  auto m = MeasureCpuOp(platform, bench.registry(), host.config().search_algo,
                        ModelOptions{},
                        [&](sim::CpuTracer& tracer, std::size_t i) {
                          scan(tracer, rq[i % rq.size()]);
                        });
  PipelineConfig config = bench.MakeConfig();
  const double threads = platform.cpu.threads;
  const double thread_time_ns = threads * 1e3 / m.estimate.mqps +
                                platform.cpu.hybrid_overhead_ns;
  config.cpu_queries_per_us = threads * 1e3 / thread_time_ns;
  PipelineStats stats = bench.Run(start_keys, config);
  return stats.mqps;
}

void Run(const Args& args) {
  sim::PlatformSpec platform = PlatformFromArgs(args, "m1");
  const std::size_t n = std::size_t{1} << args.GetInt("n_log2", 23);
  const std::size_t q = std::size_t{1} << args.GetInt("queries_log2", 18);
  std::uint64_t seed = args.GetInt("seed", 42);

  std::printf("Platform: %s, n=%zu (paper uses 128M)\n",
              platform.name.c_str(), n);
  auto data = GenerateDataset<Key64>(n, seed);

  Table table({"matches", "cpu-impl", "cpu-reg", "hb-impl", "hb-reg",
               "hb adv"});
  table.PrintTitle("range query throughput MQPS (paper Fig. 17)");
  table.PrintHeader();

  PageRegistry ci_registry, cr_registry;
  ImplicitBTree<Key64>::Config ci_config;
  ImplicitBTree<Key64> cpu_implicit(ci_config, &ci_registry);
  cpu_implicit.Build(data);
  RegularBTree<Key64>::Config cr_config;
  RegularBTree<Key64> cpu_regular(cr_config, &cr_registry);
  cpu_regular.Build(data);

  SimPlatform sim_i(platform), sim_r(platform);
  auto warm = MakeLookupQueries(data, seed + 9);
  warm.resize(std::min<std::size_t>(warm.size(), 1 << 17));
  HbImplicitBench<Key64> hb_implicit(&sim_i, data, warm);
  HbRegularBench<Key64> hb_regular(&sim_r, data, warm);

  for (int matches : {1, 2, 4, 8, 16, 32}) {
    auto rq = MakeRangeQueries(data, q, matches, seed + matches);
    std::vector<Key64> start_keys(rq.size());
    for (std::size_t i = 0; i < rq.size(); ++i) {
      start_keys[i] = rq[i].first_key;
    }

    double ci = CpuRangeMqps<ImplicitBTree<Key64>, Key64>(
        cpu_implicit, rq, platform, ci_registry);
    double cr = CpuRangeMqps<RegularBTree<Key64>, Key64>(
        cpu_regular, rq, platform, cr_registry);

    std::vector<KeyValue<Key64>> out(64);
    double hi = HbRangeMqps(
        hb_implicit, hb_implicit.tree().host_tree(), rq, start_keys,
        platform, [&](sim::CpuTracer& tracer, const RangeQuery<Key64>& query) {
          const auto& host = hb_implicit.tree().host_tree();
          std::uint64_t line = host.FindLeafLine(query.first_key);
          tracer.OnQueryStart();
          host.ScanLeaves(line, query.first_key, query.match_count,
                          out.data(), &tracer);
          tracer.OnQueryEnd();
        });
    double hr = HbRangeMqps(
        hb_regular, hb_regular.tree().host_tree(), rq, start_keys, platform,
        [&](sim::CpuTracer& tracer, const RangeQuery<Key64>& query) {
          const auto& host = hb_regular.tree().host_tree();
          auto pos = host.FindLeafPosition(query.first_key);
          tracer.OnQueryStart();
          host.ScanLeaves(pos, query.first_key, query.match_count,
                          out.data(), &tracer);
          tracer.OnQueryEnd();
        });

    const double adv = std::max(hi, hr) / std::max(ci, cr);
    table.PrintRow({std::to_string(matches), Table::Num(ci, 1),
                    Table::Num(cr, 1), Table::Num(hi, 1), Table::Num(hr, 1),
                    Table::Num((adv - 1) * 100, 0) + "%"});
  }
  std::printf(
      "\nPaper expectation: HB+-tree >80%% faster up to 8 matches, "
      "shrinking to ~22%% at 32; implicit and regular converge as leaf "
      "traversal dominates.\n");
}

}  // namespace
}  // namespace hbtree::bench

int main(int argc, char** argv) {
  hbtree::bench::Args args(argc, argv);
  args.PrintActive();
  hbtree::bench::Run(args);
  return 0;
}
