#!/usr/bin/env python3
"""Regression sentinel: diffs two hbtree.bench.v1 reports.

Compares a candidate bench report against a checked-in baseline (e.g.
BENCH_serve.json) row by row and metric by metric, with per-metric
tolerance bands. Exits 1 when any watched metric regresses beyond its
band, 2 when the reports are not comparable (different bench, row sets,
or meta), 0 otherwise — so check.sh (mode `regress`) and CI can gate on
it directly.

Direction matters: throughput-like columns (reads_per_s, mqps, ...)
regress when they DROP; latency-like columns (any *_us) regress when
they RISE. Improvements are reported but never fail the run. Stage
waterfall shares are compared by absolute difference (a share moving
from 0.30 to 0.45 means the pipeline's shape changed, whatever the
totals did). When both reports carry a "heat" section its shape is
banded the same way: hot-range concentration (top-1/top-8 share of
sketched accesses), per-stage level-traffic byte shares, and the top
range's hot flag (--heat-tolerance, absolute, default 0.15).

Rows are matched by (shards, read_workers) when both reports carry those
columns, else by index. Meta keys describing the workload (n, clients,
lookups_per_client, updates, bucket, platform, seed) must match unless
--allow-meta-drift is given: comparing different workloads is a user
error, not a regression.

Usage:
  scripts/bench_compare.py BASELINE.json CANDIDATE.json
  scripts/bench_compare.py --tolerance 0.15 --stage-tolerance 0.2 \\
      --metric-tolerance read_p99_us=0.5 BENCH_serve.json new.json
"""

import argparse
import json
import sys

# Higher is better: a drop beyond tolerance is a regression.
HIGHER_BETTER = {
    "reads_per_s", "updates_per_s", "modelled_ops_per_s", "mqps",
    "hit_rate", "vs_baseline", "modelled_vs_baseline",
    # ycsb_workloads columns: wall throughput plus the op-shape counts,
    # which are deterministic given the seeded op streams — a drop means
    # the workload harness changed behaviour, not that the host was slow.
    "wall_ops_per_s", "scans", "scan_items", "inserts",
    # serve_overload per-tenant columns: goodput is the QoS deliverable
    # (served ops per second under overload) — a drop means the fair
    # scheduler stopped protecting the tenant.
    "goodput_per_s", "served",
}
# Columns that are workload/topology identity or noisy bookkeeping, not
# performance: never compared.
SKIP = {
    "shards", "read_workers", "fault_rate", "overlapped_buckets",
    "update_batches", "retries", "device_faults", "breaker_opens",
    "breaker_closes", "cpu_fallback_buckets", "shed", "slo_max_burn",
    # Mirror-sync path counts are workload bookkeeping (how many batches
    # took the delta vs full path); the modelled cost they produce is
    # what matters, and sync_us is banded by the *_us rule.
    "delta_syncs", "full_syncs",
}
META_IDENTITY = ("platform", "n", "clients", "lookups_per_client",
                 "updates", "bucket", "seed", "retries", "deadline_us",
                 # ycsb_workloads identity: the scenario name, its mix and
                 # skew knobs, the dataset kind, and the per-purpose seeds
                 # (a baseline from one op stream must not gate a run of
                 # another).
                 "scenario", "dataset", "mix", "chooser", "ops_per_client",
                 "seed_dataset", "seed_workload",
                 # serve_overload identity: the tenant/priority topology
                 # and load model. A baseline taken under one weight or
                 # deadline layout must not silently gate a run of a
                 # different one — that's an exit-2 mismatch, not a pass.
                 "tenants", "tenant_weights", "tenant_priorities",
                 "tenant_deadlines_us", "tenant_shares", "multipliers",
                 "pacing", "queue_capacity", "slo_us", "seconds")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: cannot parse: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "hbtree.bench.v1":
        print(f"FAIL {path}: not an hbtree.bench.v1 report "
              f"(schema {doc.get('schema')!r})", file=sys.stderr)
        sys.exit(2)
    return doc


def row_key(row, index):
    # serve_overload rows: the load multiplier keys the sweep point, and
    # the tenant index distinguishes the per-tenant rows from the
    # aggregate row (which carries shards/read_workers and no tenant).
    if "load_x" in row:
        key = f"load_x={row['load_x']:g}"
        if "tenant" in row:
            key += f",tenant={row['tenant']:g}"
        return key
    if "shards" in row and "read_workers" in row:
        return f"shards={row['shards']:g},workers={row['read_workers']:g}"
    if "fault_rate" in row:
        return f"fault_rate={row['fault_rate']:g}"
    return f"row[{index}]"


def lower_better(column):
    return column.endswith("_us")


def watched(column):
    return column not in SKIP and (column in HIGHER_BETTER or
                                   lower_better(column))


class Comparison:
    def __init__(self, args):
        self.args = args
        self.regressions = []
        self.improvements = []
        self.compared = 0

    def tolerance_for(self, column):
        return self.args.per_metric.get(column, self.args.tolerance)

    def check(self, where, column, base, cand):
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            return
        if not isinstance(cand, (int, float)) or isinstance(cand, bool):
            self.regressions.append(
                f"{where}.{column}: candidate value is not numeric")
            return
        self.compared += 1
        tol = self.tolerance_for(column)
        if base == 0:
            # No baseline signal (e.g. a p99 of 0): nothing to band.
            return
        delta = (cand - base) / abs(base)
        worse = -delta if column in HIGHER_BETTER else delta
        line = (f"{where}.{column}: {base:g} -> {cand:g} "
                f"({delta:+.1%}, tolerance {tol:.0%})")
        if worse > tol:
            self.regressions.append(line)
        elif worse < -tol:
            self.improvements.append(line)

    def check_share(self, where, stage, base, cand):
        self.compared += 1
        diff = abs(cand - base)
        if diff > self.args.stage_tolerance:
            self.regressions.append(
                f"{where}.{stage}.share: {base:.2f} -> {cand:.2f} "
                f"(moved {diff:.2f}, tolerance "
                f"{self.args.stage_tolerance:.2f})")


def compare_rows(cmp, baseline, candidate):
    base_rows = {row_key(r, i): r for i, r in enumerate(baseline["rows"])}
    cand_rows = {row_key(r, i): r for i, r in enumerate(candidate["rows"])}
    if base_rows.keys() != cand_rows.keys():
        print(f"FAIL: row sets differ: baseline {sorted(base_rows)} vs "
              f"candidate {sorted(cand_rows)}", file=sys.stderr)
        sys.exit(2)
    for key, base_row in base_rows.items():
        cand_row = cand_rows[key]
        for column, base_value in base_row.items():
            if not watched(column) or column not in cand_row:
                continue
            cmp.check(key, column, base_value, cand_row[column])


def heat_concentration(heat, k):
    """Share of all sketched accesses landing in the top-k ranges."""
    keyspace = heat.get("keyspace", {})
    total = keyspace.get("total", 0)
    if not total:
        return None
    ranges = keyspace.get("ranges", [])
    return sum(r.get("count", 0) for r in ranges[:k]) / total


def heat_level_shares(heat):
    """Per-stage map of cell -> share of that stage's modelled bytes."""
    shares = {}
    for stage, cells in heat.get("levels", {}).items():
        stage_bytes = sum(c.get("bytes", 0) for c in cells.values())
        if stage_bytes == 0:
            continue
        shares[stage] = {cell: c.get("bytes", 0) / stage_bytes
                         for cell, c in cells.items()}
    return shares


def kernel_level_ratios(heat):
    """Per-level node_loads/node_queries of the batched GPU traversal.

    The ratio is the level-wise dedup fingerprint: ~0 at the root (every
    batch shares one node), rising towards 1 at the fan-out levels. A
    ratio drifting up means runs stopped collapsing (sort broken, runs
    fragmented); drifting down this much means the traffic model changed.
    """
    kernel = heat.get("kernel")
    if not kernel:
        return None
    loads = kernel.get("node_loads", [])
    queries = kernel.get("node_queries", [])
    return {level: loads[level] / q
            for level, q in enumerate(queries)
            if q > 0 and level < len(loads)}


def compare_heat(cmp, baseline, candidate):
    """Heat-shape drift bands: the workload's access pattern fingerprint.

    Hot-range concentration (top-1 / top-8 share of sketched accesses)
    and per-stage level-traffic shares are compared by absolute
    difference, like stage shares: a zipfian run whose top range share
    drops from 0.50 to 0.30 changed skew handling even if throughput
    held. Hot-flag disagreement on the baseline's top range is flagged
    too — the negative control (uniform) must stay cold and the skewed
    scenarios must stay hot.
    """
    base = baseline.get("heat")
    cand = candidate.get("heat")
    if base is None or cand is None:
        return
    for k in (1, 8):
        b = heat_concentration(base, k)
        c = heat_concentration(cand, k)
        if b is None or c is None:
            continue
        cmp.compared += 1
        diff = abs(c - b)
        if diff > cmp.args.heat_tolerance:
            cmp.regressions.append(
                f"heat.keyspace.top{k}_share: {b:.3f} -> {c:.3f} "
                f"(moved {diff:.3f}, tolerance "
                f"{cmp.args.heat_tolerance:.2f})")
    base_ranges = base.get("keyspace", {}).get("ranges", [])
    cand_ranges = cand.get("keyspace", {}).get("ranges", [])
    if base_ranges and cand_ranges:
        cmp.compared += 1
        if base_ranges[0].get("hot") != cand_ranges[0].get("hot"):
            cmp.regressions.append(
                f"heat.keyspace.ranges[0].hot: "
                f"{base_ranges[0].get('hot')} -> "
                f"{cand_ranges[0].get('hot')} (the top range changed "
                f"temperature class)")
    base_kernel = kernel_level_ratios(base)
    cand_kernel = kernel_level_ratios(cand)
    if base_kernel and cand_kernel is not None:
        for level, b in base_kernel.items():
            c = cand_kernel.get(level)
            if c is None:
                cmp.regressions.append(
                    f"heat.kernel.level{level}: baseline saw kernel "
                    f"traffic at this tree level, candidate saw none")
                continue
            cmp.compared += 1
            diff = abs(c - b)
            if diff > cmp.args.heat_tolerance:
                cmp.regressions.append(
                    f"heat.kernel.level{level}.loads_per_query: "
                    f"{b:.3f} -> {c:.3f} (moved {diff:.3f}, tolerance "
                    f"{cmp.args.heat_tolerance:.2f})")
    base_shares = heat_level_shares(base)
    cand_shares = heat_level_shares(cand)
    for stage, cells in base_shares.items():
        if stage not in cand_shares:
            cmp.regressions.append(
                f"heat.levels.{stage}: carried traffic in the baseline, "
                f"none in the candidate")
            continue
        for cell, b in cells.items():
            c = cand_shares[stage].get(cell, 0.0)
            cmp.compared += 1
            diff = abs(c - b)
            if diff > cmp.args.heat_tolerance:
                cmp.regressions.append(
                    f"heat.levels.{stage}.{cell}.bytes_share: "
                    f"{b:.3f} -> {c:.3f} (moved {diff:.3f}, tolerance "
                    f"{cmp.args.heat_tolerance:.2f})")


def compare_stages(cmp, baseline, candidate):
    base = baseline.get("stages")
    cand = candidate.get("stages")
    if base is None or cand is None:
        return
    # Aggregate shares only: per-group shares wobble with scheduling, the
    # aggregate shape is the stable fingerprint of the pipeline.
    for stage, s in base.get("aggregate", {}).items():
        c = cand.get("aggregate", {}).get(stage)
        if c is None:
            cmp.regressions.append(
                f"stages.{stage}: present in baseline, missing in candidate")
            continue
        cmp.check_share("stages", stage, s["share"], c["share"])


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.08,
                        help="default relative tolerance band "
                             "(default 8%%)")
    parser.add_argument("--stage-tolerance", type=float, default=0.10,
                        help="absolute band for aggregate stage shares "
                             "(default 0.10)")
    parser.add_argument("--heat-tolerance", type=float, default=0.15,
                        help="absolute band for heat-shape drift: hot-"
                             "range concentration and per-stage level "
                             "traffic shares (default 0.15)")
    parser.add_argument("--metric-tolerance", action="append", default=[],
                        metavar="COLUMN=TOL",
                        help="per-metric override, e.g. read_p99_us=0.5")
    parser.add_argument("--allow-meta-drift", action="store_true",
                        help="compare even when the workload meta differs")
    args = parser.parse_args()
    args.per_metric = {}
    for spec in args.metric_tolerance:
        column, _, value = spec.partition("=")
        try:
            args.per_metric[column] = float(value)
        except ValueError:
            parser.error(f"bad --metric-tolerance {spec!r}")

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    if baseline.get("bench") != candidate.get("bench"):
        print(f"FAIL: different benches: {baseline.get('bench')!r} vs "
              f"{candidate.get('bench')!r}", file=sys.stderr)
        return 2
    drift = [k for k in META_IDENTITY
             if baseline.get("meta", {}).get(k) !=
             candidate.get("meta", {}).get(k)
             and (k in baseline.get("meta", {}) or
                  k in candidate.get("meta", {}))]
    if drift:
        msg = (f"workload meta differs on {drift} — these runs measured "
               f"different things")
        if not args.allow_meta_drift:
            print(f"FAIL: {msg} (pass --allow-meta-drift to override)",
                  file=sys.stderr)
            return 2
        print(f"warning: {msg}", file=sys.stderr)

    cmp = Comparison(args)
    compare_rows(cmp, baseline, candidate)
    compare_stages(cmp, baseline, candidate)
    compare_heat(cmp, baseline, candidate)

    for line in cmp.improvements:
        print(f"  improved   {line}")
    for line in cmp.regressions:
        print(f"  REGRESSED  {line}", file=sys.stderr)
    verdict = "REGRESSION" if cmp.regressions else "OK"
    print(f"{verdict}: {cmp.compared} metric(s) compared, "
          f"{len(cmp.regressions)} regressed, "
          f"{len(cmp.improvements)} improved "
          f"({args.baseline} -> {args.candidate})")
    return 1 if cmp.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
