#!/usr/bin/env python3
"""Validates hbtree metrics/bench JSON emitted by the observability layer.

Accepts either schema:
  * hbtree.metrics.v1 — a bare MetricsRegistry snapshot
    (obs::MetricsRegistry::ToJson)
  * hbtree.bench.v1   — a BenchReport dump; its rows are checked and an
    embedded "metrics" object, when present, is validated as metrics.v1

Fails (exit 1) on: unparseable JSON, unknown schema, missing required
keys, non-finite numbers (the C++ JSON writer turns NaN/inf into null,
so any null value is a poisoned metric), negative counters, malformed
histogram summaries (percentiles above the max, p50 > p99, ...),
malformed exemplars, a malformed bench "stages" waterfall, or a
malformed "heat" section (mis-sorted top-K ranges, shard totals that
don't reconcile with the merged total, tenant counts that don't sum to
their range, hit-level bytes that don't sum back to a cell's bytes,
pool temperature classes that don't sum to the segment count).

With --trace TRACE.json the exemplars are cross-checked against the
exported Chrome trace: every exemplar stamped with the trace's session
id must carry a span_id that resolves to a recorded span (exemplars
from other sessions are skipped — a lifetime registry can outlive a
trace session).

Usage: scripts/validate_metrics.py FILE [FILE ...]
       scripts/validate_metrics.py --require-counter serve.lookups FILE
       scripts/validate_metrics.py --trace trace.json \\
           --require-exemplars serve.read_latency BENCH_serve.json
"""

import argparse
import json
import math
import sys

# Set when a bench is expected to have exercised the serving layer; lets
# check.sh assert the fault-injected run actually recorded activity.
REQUIRED_HISTOGRAM_KEYS = ("count", "p50_us", "p90_us", "p99_us",
                           "max_us", "mean_us")
REQUIRED_EXEMPLAR_KEYS = ("bucket_us", "trace_id", "span_id", "shard",
                          "wall_us", "modelled_us")
REQUIRED_STAGE_KEYS = ("count", "total_us", "mean_us", "max_us", "share")
REQUIRED_HEAT_RANGE_KEYS = ("lo", "hi", "shard", "count", "share", "hot",
                            "tenants")
# hit_bytes[HitLevel] split of each cell's bytes — must sum back exactly.
REQUIRED_HEAT_CELL_KEYS = ("touches", "bytes", "l1_bytes", "l2_bytes",
                           "l3_bytes", "dram_bytes")
REQUIRED_HEAT_POOL_KEYS = ("segments", "hot", "warm", "cold",
                           "cold_fraction")
# LatencyHistogram::kMaxExemplars — the reservoir is bounded per
# histogram, so more than this in a serialized summary means the bound
# was lost somewhere (e.g. a MergeFrom that concatenates).
MAX_EXEMPLARS = 8


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def check_finite_number(path, name, value):
    if value is None:
        fail(path, f"{name} is null (a NaN/inf was serialized)")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{name} is not a number: {value!r}")
    if not math.isfinite(value):
        fail(path, f"{name} is not finite: {value!r}")


def validate_histogram(path, name, summary):
    if not isinstance(summary, dict):
        fail(path, f"histogram {name} is not an object")
    for key in REQUIRED_HISTOGRAM_KEYS:
        if key not in summary:
            fail(path, f"histogram {name} missing key {key}")
        check_finite_number(path, f"histogram {name}.{key}", summary[key])
    if summary["count"] < 0:
        fail(path, f"histogram {name} has negative count")
    if summary["count"] > 0:
        if not (summary["p50_us"] <= summary["p90_us"] <=
                summary["p99_us"] <= summary["max_us"] + 1e-9):
            fail(path, f"histogram {name} percentiles are not monotone")
        for key in REQUIRED_HISTOGRAM_KEYS[1:]:
            if summary[key] < 0:
                fail(path, f"histogram {name}.{key} is negative")
    validate_exemplars(path, name, summary)


def validate_exemplars(path, name, summary):
    exemplars = summary.get("exemplars")
    if exemplars is None:
        return
    if not isinstance(exemplars, list):
        fail(path, f"histogram {name}.exemplars is not an array")
    if len(exemplars) > MAX_EXEMPLARS:
        fail(path, f"histogram {name} has {len(exemplars)} exemplars; the "
                   f"reservoir is bounded at {MAX_EXEMPLARS}")
    if exemplars and summary["count"] == 0:
        fail(path, f"histogram {name} has exemplars but zero samples")
    for i, ex in enumerate(exemplars):
        if not isinstance(ex, dict):
            fail(path, f"histogram {name} exemplar {i} is not an object")
        for key in REQUIRED_EXEMPLAR_KEYS:
            if key not in ex:
                fail(path, f"histogram {name} exemplar {i} missing {key}")
            check_finite_number(path, f"histogram {name} exemplar {i}.{key}",
                                ex[key])
        for key in ("trace_id", "span_id"):
            if ex[key] != int(ex[key]) or ex[key] <= 0:
                fail(path, f"histogram {name} exemplar {i}.{key} is not a "
                           f"positive integer: {ex[key]!r}")
        if ex["wall_us"] < 0 or ex["modelled_us"] < 0:
            fail(path, f"histogram {name} exemplar {i} has negative latency")
        if summary["count"] > 0 and ex["wall_us"] > summary["max_us"] + 1e-9:
            fail(path, f"histogram {name} exemplar {i} wall_us "
                       f"{ex['wall_us']} exceeds the histogram max "
                       f"{summary['max_us']}")


def validate_stage_map(path, context, stages):
    if not isinstance(stages, dict):
        fail(path, f"{context} is not an object")
    share_sum = 0.0
    for stage, s in stages.items():
        if not isinstance(s, dict):
            fail(path, f"{context}.{stage} is not an object")
        for key in REQUIRED_STAGE_KEYS:
            if key not in s:
                fail(path, f"{context}.{stage} missing key {key}")
            check_finite_number(path, f"{context}.{stage}.{key}", s[key])
            if s[key] < 0:
                fail(path, f"{context}.{stage}.{key} is negative")
        if not 0 <= s["share"] <= 1 + 1e-9:
            fail(path, f"{context}.{stage}.share out of [0,1]: {s['share']}")
        share_sum += s["share"]
    if stages and abs(share_sum - 1.0) > 1e-6:
        fail(path, f"{context} stage shares sum to {share_sum}, not 1")


def validate_stages(path, stages):
    for key in ("total_us", "aggregate", "groups"):
        if key not in stages:
            fail(path, f"stages section missing key {key}")
    check_finite_number(path, "stages.total_us", stages["total_us"])
    validate_stage_map(path, "stages.aggregate", stages["aggregate"])
    if not isinstance(stages["groups"], dict):
        fail(path, "stages.groups is not an object")
    for group, group_stages in stages["groups"].items():
        validate_stage_map(path, f"stages.groups.{group}", group_stages)
    return (f"{len(stages['aggregate'])} stages over "
            f"{len(stages['groups'])} groups")


def validate_heat_keyspace(path, keyspace):
    for key in ("total", "bins", "hot_threshold_share", "shard_totals",
                "ranges"):
        if key not in keyspace:
            fail(path, f"heat.keyspace missing key {key}")
    check_finite_number(path, "heat.keyspace.total", keyspace["total"])
    check_finite_number(path, "heat.keyspace.bins", keyspace["bins"])
    check_finite_number(path, "heat.keyspace.hot_threshold_share",
                        keyspace["hot_threshold_share"])
    if keyspace["bins"] <= 0:
        fail(path, f"heat.keyspace.bins must be positive: {keyspace['bins']}")
    if not isinstance(keyspace["shard_totals"], list):
        fail(path, "heat.keyspace.shard_totals is not an array")
    for i, total in enumerate(keyspace["shard_totals"]):
        check_finite_number(path, f"heat.keyspace.shard_totals[{i}]", total)
        if total < 0:
            fail(path, f"heat.keyspace.shard_totals[{i}] is negative")
    # Bin totals are derived as per-tenant sums, so the shard merge must
    # reconcile exactly — any drift means a sketch lost or double-counted.
    merged = sum(keyspace["shard_totals"])
    if merged != keyspace["total"]:
        fail(path, f"heat.keyspace shard_totals sum to {merged}, not the "
                   f"merged total {keyspace['total']}")
    ranges = keyspace["ranges"]
    if not isinstance(ranges, list):
        fail(path, "heat.keyspace.ranges is not an array")
    prev_count = None
    for i, r in enumerate(ranges):
        ctx = f"heat.keyspace.ranges[{i}]"
        if not isinstance(r, dict):
            fail(path, f"{ctx} is not an object")
        for key in REQUIRED_HEAT_RANGE_KEYS:
            if key not in r:
                fail(path, f"{ctx} missing key {key}")
            if key not in ("hot", "tenants"):
                check_finite_number(path, f"{ctx}.{key}", r[key])
        if r["lo"] > r["hi"]:
            fail(path, f"{ctx} has lo {r['lo']} > hi {r['hi']}")
        if not 0 <= r["shard"] < max(1, len(keyspace["shard_totals"])):
            fail(path, f"{ctx}.shard {r['shard']} out of range")
        if r["count"] < 0:
            fail(path, f"{ctx}.count is negative")
        if not 0 <= r["share"] <= 1 + 1e-9:
            fail(path, f"{ctx}.share out of [0,1]: {r['share']}")
        if not isinstance(r["hot"], bool):
            fail(path, f"{ctx}.hot is not a boolean")
        # Top-K report must come ranked; a mis-sorted list means the
        # merge heap dropped the wrong bins.
        if prev_count is not None and r["count"] > prev_count:
            fail(path, f"{ctx} breaks the non-increasing count order "
                       f"({r['count']} after {prev_count})")
        prev_count = r["count"]
        if not isinstance(r["tenants"], dict):
            fail(path, f"{ctx}.tenants is not an object")
        tenant_sum = 0
        for tenant, count in r["tenants"].items():
            check_finite_number(path, f"{ctx}.tenants.{tenant}", count)
            if count < 0:
                fail(path, f"{ctx}.tenants.{tenant} is negative")
            tenant_sum += count
        if tenant_sum != r["count"]:
            fail(path, f"{ctx} tenant counts sum to {tenant_sum}, not the "
                       f"range count {r['count']}")
    return len(ranges)


def validate_heat_levels(path, levels):
    if not isinstance(levels, dict):
        fail(path, "heat.levels is not an object")
    cells = 0
    for stage, stage_cells in levels.items():
        if not isinstance(stage_cells, dict):
            fail(path, f"heat.levels.{stage} is not an object")
        for cell, traffic in stage_cells.items():
            ctx = f"heat.levels.{stage}.{cell}"
            if not isinstance(traffic, dict):
                fail(path, f"{ctx} is not an object")
            for key in REQUIRED_HEAT_CELL_KEYS:
                if key not in traffic:
                    fail(path, f"{ctx} missing key {key}")
                check_finite_number(path, f"{ctx}.{key}", traffic[key])
                if traffic[key] < 0:
                    fail(path, f"{ctx}.{key} is negative")
            split = (traffic["l1_bytes"] + traffic["l2_bytes"] +
                     traffic["l3_bytes"] + traffic["dram_bytes"])
            if split != traffic["bytes"]:
                fail(path, f"{ctx} hit-level bytes sum to {split}, not "
                           f"bytes {traffic['bytes']}")
            cells += 1
    return cells


def validate_heat_pools(path, pools):
    if not isinstance(pools, dict):
        fail(path, "heat.pools is not an object")
    for pool, temp in pools.items():
        ctx = f"heat.pools.{pool}"
        if not isinstance(temp, dict):
            fail(path, f"{ctx} is not an object")
        for key in REQUIRED_HEAT_POOL_KEYS:
            if key not in temp:
                fail(path, f"{ctx} missing key {key}")
            check_finite_number(path, f"{ctx}.{key}", temp[key])
            if temp[key] < 0:
                fail(path, f"{ctx}.{key} is negative")
        if temp["hot"] + temp["warm"] + temp["cold"] != temp["segments"]:
            fail(path, f"{ctx} temperature classes sum to "
                       f"{temp['hot'] + temp['warm'] + temp['cold']}, not "
                       f"segments {temp['segments']}")
        if not 0 <= temp["cold_fraction"] <= 1 + 1e-9:
            fail(path, f"{ctx}.cold_fraction out of [0,1]: "
                       f"{temp['cold_fraction']}")
    return len(pools)


def validate_heat_kernel(path, kernel):
    """Checks the level-wise dispatch reconciliation invariant.

    node_loads[l] counts nodes the batched kernel actually materialised
    at tree level l; node_queries[l] counts queries that passed through
    that level.  Level-wise dispatch resolves a run of queries sharing a
    node with one load, so wherever a level saw traffic the loads must
    be in [1, queries], and across a whole serve run (many batches, a
    shared root) the totals must collapse strictly below one-load-per-
    query — equality means the dedup never fired.
    """
    if not isinstance(kernel, dict):
        fail(path, "heat.kernel is not an object")
    for key in ("launches", "dram_bytes", "l2_bytes", "node_loads",
                "node_queries"):
        if key not in kernel:
            fail(path, f"heat.kernel missing key {key}")
    for key in ("launches", "dram_bytes", "l2_bytes"):
        check_finite_number(path, f"heat.kernel.{key}", kernel[key])
        if kernel[key] < 0:
            fail(path, f"heat.kernel.{key} is negative")
    loads, queries = kernel["node_loads"], kernel["node_queries"]
    if not isinstance(loads, list) or not isinstance(queries, list):
        fail(path, "heat.kernel node_loads/node_queries must be arrays")
    if len(loads) != len(queries):
        fail(path, f"heat.kernel node_loads has {len(loads)} levels but "
                   f"node_queries has {len(queries)}")
    for level, (l, q) in enumerate(zip(loads, queries)):
        ctx = f"heat.kernel level {level}"
        check_finite_number(path, f"{ctx} node_loads", l)
        check_finite_number(path, f"{ctx} node_queries", q)
        if l < 0 or q < 0:
            fail(path, f"{ctx} has a negative counter")
        if q > 0 and not 1 <= l <= q:
            fail(path, f"{ctx} loaded {l} nodes for {q} queries "
                       f"(expected 1 <= loads <= queries)")
        if q == 0 and l != 0:
            fail(path, f"{ctx} loaded {l} nodes but saw no queries")
    total_loads, total_queries = sum(loads), sum(queries)
    active = sum(1 for q in queries if q > 0)
    # Strictness only holds once batches average more than one query per
    # level (a degenerate 1-query batch legitimately loads 1 node/level).
    if total_queries > kernel["launches"] * max(active, 1):
        if total_loads >= total_queries:
            fail(path, f"heat.kernel loads {total_loads} did not collapse "
                       f"below queries {total_queries}; level-wise dedup "
                       f"is not taking effect")
    return f"{active} active levels, {total_loads}/{total_queries} loads"


def validate_heat(path, heat):
    for key in ("keyspace", "levels", "pools"):
        if key not in heat:
            fail(path, f"heat section missing key {key}")
    ranges = validate_heat_keyspace(path, heat["keyspace"])
    cells = validate_heat_levels(path, heat["levels"])
    pools = validate_heat_pools(path, heat["pools"])
    detail = f"{ranges} ranges, {cells} level cells, {pools} pools"
    if "kernel" in heat:
        detail += "; kernel: " + validate_heat_kernel(path, heat["kernel"])
    return detail


def validate_metrics_v1(path, doc):
    for key in ("schema", "windowed", "window_seconds", "counters",
                "gauges", "histograms"):
        if key not in doc:
            fail(path, f"metrics object missing key {key}")
    check_finite_number(path, "window_seconds", doc["window_seconds"])
    if doc["window_seconds"] < 0:
        fail(path, "window_seconds is negative")
    for name, value in doc["counters"].items():
        check_finite_number(path, f"counter {name}", value)
        if value < 0 or value != int(value):
            fail(path, f"counter {name} is not a non-negative integer")
    for name, value in doc["gauges"].items():
        check_finite_number(path, f"gauge {name}", value)
    for name, summary in doc["histograms"].items():
        validate_histogram(path, name, summary)
    return (f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
            f"{len(doc['histograms'])} histograms")


def validate_bench_v1(path, doc):
    for key in ("schema", "bench", "meta", "rows"):
        if key not in doc:
            fail(path, f"bench object missing key {key}")
    if not isinstance(doc["rows"], list) or not doc["rows"]:
        fail(path, "bench rows must be a non-empty array")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict) or not row:
            fail(path, f"row {i} must be a non-empty object")
        for column, value in row.items():
            if isinstance(value, str):
                continue
            check_finite_number(path, f"row {i} column {column}", value)
    detail = f"{len(doc['rows'])} rows"
    if "stages" in doc:
        detail += "; stages: " + validate_stages(path, doc["stages"])
    if "heat" in doc:
        detail += "; heat: " + validate_heat(path, doc["heat"])
    if "metrics" in doc:
        detail += "; metrics: " + validate_metrics_v1(path, doc["metrics"])
    return detail


def load_trace_spans(path):
    """Returns (trace_id, set of span_ids) from a Chrome trace export."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse trace: {e}")
    trace_id = trace.get("traceId")
    if not isinstance(trace_id, int) or trace_id <= 0:
        fail(path, f"trace has no usable top-level traceId: {trace_id!r}")
    span_ids = set()
    for event in trace.get("traceEvents", []):
        span_id = event.get("args", {}).get("span_id")
        if isinstance(span_id, int) and span_id > 0:
            span_ids.add(span_id)
    return trace_id, span_ids


def iter_histograms(doc):
    metrics = doc if doc.get("schema") == "hbtree.metrics.v1" \
        else doc.get("metrics", {})
    yield from metrics.get("histograms", {}).items()


def check_exemplars_against_trace(path, doc, trace_id, span_ids):
    """Every exemplar from the trace's session must resolve to a span."""
    resolved = 0
    skipped = 0
    for name, summary in iter_histograms(doc):
        for i, ex in enumerate(summary.get("exemplars", [])):
            if int(ex["trace_id"]) != trace_id:
                skipped += 1  # captured under an earlier/other session
                continue
            if int(ex["span_id"]) not in span_ids:
                fail(path, f"histogram {name} exemplar {i} span_id "
                           f"{ex['span_id']} does not resolve in the trace "
                           f"(trace_id {trace_id} matches)")
            resolved += 1
    return resolved, skipped


def check_required_exemplars(path, doc, names):
    """Each named histogram needs >= 1 exemplar from its own tail.

    The reservoir targets the p99+ region; tolerate adaptive-threshold
    lag by only requiring the best exemplar to reach 80% of p99.
    """
    histograms = dict(iter_histograms(doc))
    for name in names:
        if name not in histograms:
            fail(path, f"histogram {name} (--require-exemplars) is absent")
        summary = histograms[name]
        exemplars = summary.get("exemplars", [])
        if not exemplars:
            fail(path, f"histogram {name} recorded {summary['count']} "
                       f"samples but captured no exemplars")
        best = max(ex["wall_us"] for ex in exemplars)
        if best < 0.8 * summary["p99_us"]:
            fail(path, f"histogram {name} exemplars top out at "
                       f"{best:.1f}us, below 80% of p99 "
                       f"({summary['p99_us']:.1f}us) — not tail samples")


def validate_file(path, args, trace):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")
    schema = doc.get("schema")
    if schema == "hbtree.metrics.v1":
        detail = validate_metrics_v1(path, doc)
        counters = doc["counters"]
    elif schema == "hbtree.bench.v1":
        detail = validate_bench_v1(path, doc)
        counters = doc.get("metrics", {}).get("counters", {})
        if args.require_heat and "heat" not in doc:
            fail(path, "bench report has no heat section (--require-heat; "
                       "was the binary built with HBTREE_OBS_TRACING?)")
    else:
        fail(path, f"unknown schema: {schema!r}")
    for name in args.require_counter:
        if name not in counters:
            fail(path, f"required counter {name} is absent")
    if args.require_exemplars:
        check_required_exemplars(path, doc, args.require_exemplars)
    if trace is not None:
        resolved, skipped = check_exemplars_against_trace(
            path, doc, trace[0], trace[1])
        detail += f"; {resolved} exemplar(s) resolved in trace"
        if skipped:
            detail += f", {skipped} from other sessions skipped"
        if args.require_exemplars and resolved == 0:
            fail(path, "no exemplar resolved against the trace (all from "
                       "other sessions?)")
    print(f"{path}: OK ({schema}; {detail})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this counter exists in the "
                             "(embedded) metrics snapshot")
    parser.add_argument("--require-exemplars", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this histogram carries at least "
                             "one tail exemplar (>= 80%% of its p99)")
    parser.add_argument("--require-heat", action="store_true",
                        help="fail any bench report that lacks a heat "
                             "section (keyspace heatmap + level traffic + "
                             "pool temperatures)")
    parser.add_argument("--trace", metavar="TRACE_JSON",
                        help="Chrome trace export to resolve exemplar "
                             "trace_id/span_id pairs against")
    args = parser.parse_args()
    status = 0
    trace = None
    if args.trace:
        try:
            trace = load_trace_spans(args.trace)
        except ValidationError as e:
            print(f"FAIL {e}", file=sys.stderr)
            return 1
    for path in args.files:
        try:
            validate_file(path, args, trace)
        except ValidationError as e:
            print(f"FAIL {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
