#!/usr/bin/env python3
"""Validates hbtree metrics/bench JSON emitted by the observability layer.

Accepts either schema:
  * hbtree.metrics.v1 — a bare MetricsRegistry snapshot
    (obs::MetricsRegistry::ToJson)
  * hbtree.bench.v1   — a BenchReport dump; its rows are checked and an
    embedded "metrics" object, when present, is validated as metrics.v1

Fails (exit 1) on: unparseable JSON, unknown schema, missing required
keys, non-finite numbers (the C++ JSON writer turns NaN/inf into null,
so any null value is a poisoned metric), negative counters, or malformed
histogram summaries (percentiles above the max, p50 > p99, ...).

Usage: scripts/validate_metrics.py FILE [FILE ...]
       scripts/validate_metrics.py --require-counter serve.lookups FILE
"""

import argparse
import json
import math
import sys

# Set when a bench is expected to have exercised the serving layer; lets
# check.sh assert the fault-injected run actually recorded activity.
REQUIRED_HISTOGRAM_KEYS = ("count", "p50_us", "p90_us", "p99_us",
                           "max_us", "mean_us")


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def check_finite_number(path, name, value):
    if value is None:
        fail(path, f"{name} is null (a NaN/inf was serialized)")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{name} is not a number: {value!r}")
    if not math.isfinite(value):
        fail(path, f"{name} is not finite: {value!r}")


def validate_histogram(path, name, summary):
    if not isinstance(summary, dict):
        fail(path, f"histogram {name} is not an object")
    for key in REQUIRED_HISTOGRAM_KEYS:
        if key not in summary:
            fail(path, f"histogram {name} missing key {key}")
        check_finite_number(path, f"histogram {name}.{key}", summary[key])
    if summary["count"] < 0:
        fail(path, f"histogram {name} has negative count")
    if summary["count"] > 0:
        if not (summary["p50_us"] <= summary["p90_us"] <=
                summary["p99_us"] <= summary["max_us"] + 1e-9):
            fail(path, f"histogram {name} percentiles are not monotone")
        for key in REQUIRED_HISTOGRAM_KEYS[1:]:
            if summary[key] < 0:
                fail(path, f"histogram {name}.{key} is negative")


def validate_metrics_v1(path, doc):
    for key in ("schema", "windowed", "window_seconds", "counters",
                "gauges", "histograms"):
        if key not in doc:
            fail(path, f"metrics object missing key {key}")
    check_finite_number(path, "window_seconds", doc["window_seconds"])
    if doc["window_seconds"] < 0:
        fail(path, "window_seconds is negative")
    for name, value in doc["counters"].items():
        check_finite_number(path, f"counter {name}", value)
        if value < 0 or value != int(value):
            fail(path, f"counter {name} is not a non-negative integer")
    for name, value in doc["gauges"].items():
        check_finite_number(path, f"gauge {name}", value)
    for name, summary in doc["histograms"].items():
        validate_histogram(path, name, summary)
    return (f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
            f"{len(doc['histograms'])} histograms")


def validate_bench_v1(path, doc):
    for key in ("schema", "bench", "meta", "rows"):
        if key not in doc:
            fail(path, f"bench object missing key {key}")
    if not isinstance(doc["rows"], list) or not doc["rows"]:
        fail(path, "bench rows must be a non-empty array")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict) or not row:
            fail(path, f"row {i} must be a non-empty object")
        for column, value in row.items():
            if isinstance(value, str):
                continue
            check_finite_number(path, f"row {i} column {column}", value)
    detail = f"{len(doc['rows'])} rows"
    if "metrics" in doc:
        detail += "; metrics: " + validate_metrics_v1(path, doc["metrics"])
    return detail


def validate_file(path, require_counters):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")
    schema = doc.get("schema")
    if schema == "hbtree.metrics.v1":
        detail = validate_metrics_v1(path, doc)
        counters = doc["counters"]
    elif schema == "hbtree.bench.v1":
        detail = validate_bench_v1(path, doc)
        counters = doc.get("metrics", {}).get("counters", {})
    else:
        fail(path, f"unknown schema: {schema!r}")
    for name in require_counters:
        if name not in counters:
            fail(path, f"required counter {name} is absent")
    print(f"{path}: OK ({schema}; {detail})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this counter exists in the "
                             "(embedded) metrics snapshot")
    args = parser.parse_args()
    status = 0
    for path in args.files:
        try:
            validate_file(path, args.require_counter)
        except ValidationError as e:
            print(f"FAIL {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
