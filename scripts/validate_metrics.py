#!/usr/bin/env python3
"""Validates hbtree metrics/bench JSON emitted by the observability layer.

Accepts either schema:
  * hbtree.metrics.v1 — a bare MetricsRegistry snapshot
    (obs::MetricsRegistry::ToJson)
  * hbtree.bench.v1   — a BenchReport dump; its rows are checked and an
    embedded "metrics" object, when present, is validated as metrics.v1

Fails (exit 1) on: unparseable JSON, unknown schema, missing required
keys, non-finite numbers (the C++ JSON writer turns NaN/inf into null,
so any null value is a poisoned metric), negative counters, malformed
histogram summaries (percentiles above the max, p50 > p99, ...),
malformed exemplars, or a malformed bench "stages" waterfall.

With --trace TRACE.json the exemplars are cross-checked against the
exported Chrome trace: every exemplar stamped with the trace's session
id must carry a span_id that resolves to a recorded span (exemplars
from other sessions are skipped — a lifetime registry can outlive a
trace session).

Usage: scripts/validate_metrics.py FILE [FILE ...]
       scripts/validate_metrics.py --require-counter serve.lookups FILE
       scripts/validate_metrics.py --trace trace.json \\
           --require-exemplars serve.read_latency BENCH_serve.json
"""

import argparse
import json
import math
import sys

# Set when a bench is expected to have exercised the serving layer; lets
# check.sh assert the fault-injected run actually recorded activity.
REQUIRED_HISTOGRAM_KEYS = ("count", "p50_us", "p90_us", "p99_us",
                           "max_us", "mean_us")
REQUIRED_EXEMPLAR_KEYS = ("bucket_us", "trace_id", "span_id", "shard",
                          "wall_us", "modelled_us")
REQUIRED_STAGE_KEYS = ("count", "total_us", "mean_us", "max_us", "share")
# LatencyHistogram::kMaxExemplars — the reservoir is bounded per
# histogram, so more than this in a serialized summary means the bound
# was lost somewhere (e.g. a MergeFrom that concatenates).
MAX_EXEMPLARS = 8


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def check_finite_number(path, name, value):
    if value is None:
        fail(path, f"{name} is null (a NaN/inf was serialized)")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{name} is not a number: {value!r}")
    if not math.isfinite(value):
        fail(path, f"{name} is not finite: {value!r}")


def validate_histogram(path, name, summary):
    if not isinstance(summary, dict):
        fail(path, f"histogram {name} is not an object")
    for key in REQUIRED_HISTOGRAM_KEYS:
        if key not in summary:
            fail(path, f"histogram {name} missing key {key}")
        check_finite_number(path, f"histogram {name}.{key}", summary[key])
    if summary["count"] < 0:
        fail(path, f"histogram {name} has negative count")
    if summary["count"] > 0:
        if not (summary["p50_us"] <= summary["p90_us"] <=
                summary["p99_us"] <= summary["max_us"] + 1e-9):
            fail(path, f"histogram {name} percentiles are not monotone")
        for key in REQUIRED_HISTOGRAM_KEYS[1:]:
            if summary[key] < 0:
                fail(path, f"histogram {name}.{key} is negative")
    validate_exemplars(path, name, summary)


def validate_exemplars(path, name, summary):
    exemplars = summary.get("exemplars")
    if exemplars is None:
        return
    if not isinstance(exemplars, list):
        fail(path, f"histogram {name}.exemplars is not an array")
    if len(exemplars) > MAX_EXEMPLARS:
        fail(path, f"histogram {name} has {len(exemplars)} exemplars; the "
                   f"reservoir is bounded at {MAX_EXEMPLARS}")
    if exemplars and summary["count"] == 0:
        fail(path, f"histogram {name} has exemplars but zero samples")
    for i, ex in enumerate(exemplars):
        if not isinstance(ex, dict):
            fail(path, f"histogram {name} exemplar {i} is not an object")
        for key in REQUIRED_EXEMPLAR_KEYS:
            if key not in ex:
                fail(path, f"histogram {name} exemplar {i} missing {key}")
            check_finite_number(path, f"histogram {name} exemplar {i}.{key}",
                                ex[key])
        for key in ("trace_id", "span_id"):
            if ex[key] != int(ex[key]) or ex[key] <= 0:
                fail(path, f"histogram {name} exemplar {i}.{key} is not a "
                           f"positive integer: {ex[key]!r}")
        if ex["wall_us"] < 0 or ex["modelled_us"] < 0:
            fail(path, f"histogram {name} exemplar {i} has negative latency")
        if summary["count"] > 0 and ex["wall_us"] > summary["max_us"] + 1e-9:
            fail(path, f"histogram {name} exemplar {i} wall_us "
                       f"{ex['wall_us']} exceeds the histogram max "
                       f"{summary['max_us']}")


def validate_stage_map(path, context, stages):
    if not isinstance(stages, dict):
        fail(path, f"{context} is not an object")
    share_sum = 0.0
    for stage, s in stages.items():
        if not isinstance(s, dict):
            fail(path, f"{context}.{stage} is not an object")
        for key in REQUIRED_STAGE_KEYS:
            if key not in s:
                fail(path, f"{context}.{stage} missing key {key}")
            check_finite_number(path, f"{context}.{stage}.{key}", s[key])
            if s[key] < 0:
                fail(path, f"{context}.{stage}.{key} is negative")
        if not 0 <= s["share"] <= 1 + 1e-9:
            fail(path, f"{context}.{stage}.share out of [0,1]: {s['share']}")
        share_sum += s["share"]
    if stages and abs(share_sum - 1.0) > 1e-6:
        fail(path, f"{context} stage shares sum to {share_sum}, not 1")


def validate_stages(path, stages):
    for key in ("total_us", "aggregate", "groups"):
        if key not in stages:
            fail(path, f"stages section missing key {key}")
    check_finite_number(path, "stages.total_us", stages["total_us"])
    validate_stage_map(path, "stages.aggregate", stages["aggregate"])
    if not isinstance(stages["groups"], dict):
        fail(path, "stages.groups is not an object")
    for group, group_stages in stages["groups"].items():
        validate_stage_map(path, f"stages.groups.{group}", group_stages)
    return (f"{len(stages['aggregate'])} stages over "
            f"{len(stages['groups'])} groups")


def validate_metrics_v1(path, doc):
    for key in ("schema", "windowed", "window_seconds", "counters",
                "gauges", "histograms"):
        if key not in doc:
            fail(path, f"metrics object missing key {key}")
    check_finite_number(path, "window_seconds", doc["window_seconds"])
    if doc["window_seconds"] < 0:
        fail(path, "window_seconds is negative")
    for name, value in doc["counters"].items():
        check_finite_number(path, f"counter {name}", value)
        if value < 0 or value != int(value):
            fail(path, f"counter {name} is not a non-negative integer")
    for name, value in doc["gauges"].items():
        check_finite_number(path, f"gauge {name}", value)
    for name, summary in doc["histograms"].items():
        validate_histogram(path, name, summary)
    return (f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
            f"{len(doc['histograms'])} histograms")


def validate_bench_v1(path, doc):
    for key in ("schema", "bench", "meta", "rows"):
        if key not in doc:
            fail(path, f"bench object missing key {key}")
    if not isinstance(doc["rows"], list) or not doc["rows"]:
        fail(path, "bench rows must be a non-empty array")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict) or not row:
            fail(path, f"row {i} must be a non-empty object")
        for column, value in row.items():
            if isinstance(value, str):
                continue
            check_finite_number(path, f"row {i} column {column}", value)
    detail = f"{len(doc['rows'])} rows"
    if "stages" in doc:
        detail += "; stages: " + validate_stages(path, doc["stages"])
    if "metrics" in doc:
        detail += "; metrics: " + validate_metrics_v1(path, doc["metrics"])
    return detail


def load_trace_spans(path):
    """Returns (trace_id, set of span_ids) from a Chrome trace export."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse trace: {e}")
    trace_id = trace.get("traceId")
    if not isinstance(trace_id, int) or trace_id <= 0:
        fail(path, f"trace has no usable top-level traceId: {trace_id!r}")
    span_ids = set()
    for event in trace.get("traceEvents", []):
        span_id = event.get("args", {}).get("span_id")
        if isinstance(span_id, int) and span_id > 0:
            span_ids.add(span_id)
    return trace_id, span_ids


def iter_histograms(doc):
    metrics = doc if doc.get("schema") == "hbtree.metrics.v1" \
        else doc.get("metrics", {})
    yield from metrics.get("histograms", {}).items()


def check_exemplars_against_trace(path, doc, trace_id, span_ids):
    """Every exemplar from the trace's session must resolve to a span."""
    resolved = 0
    skipped = 0
    for name, summary in iter_histograms(doc):
        for i, ex in enumerate(summary.get("exemplars", [])):
            if int(ex["trace_id"]) != trace_id:
                skipped += 1  # captured under an earlier/other session
                continue
            if int(ex["span_id"]) not in span_ids:
                fail(path, f"histogram {name} exemplar {i} span_id "
                           f"{ex['span_id']} does not resolve in the trace "
                           f"(trace_id {trace_id} matches)")
            resolved += 1
    return resolved, skipped


def check_required_exemplars(path, doc, names):
    """Each named histogram needs >= 1 exemplar from its own tail.

    The reservoir targets the p99+ region; tolerate adaptive-threshold
    lag by only requiring the best exemplar to reach 80% of p99.
    """
    histograms = dict(iter_histograms(doc))
    for name in names:
        if name not in histograms:
            fail(path, f"histogram {name} (--require-exemplars) is absent")
        summary = histograms[name]
        exemplars = summary.get("exemplars", [])
        if not exemplars:
            fail(path, f"histogram {name} recorded {summary['count']} "
                       f"samples but captured no exemplars")
        best = max(ex["wall_us"] for ex in exemplars)
        if best < 0.8 * summary["p99_us"]:
            fail(path, f"histogram {name} exemplars top out at "
                       f"{best:.1f}us, below 80% of p99 "
                       f"({summary['p99_us']:.1f}us) — not tail samples")


def validate_file(path, args, trace):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")
    schema = doc.get("schema")
    if schema == "hbtree.metrics.v1":
        detail = validate_metrics_v1(path, doc)
        counters = doc["counters"]
    elif schema == "hbtree.bench.v1":
        detail = validate_bench_v1(path, doc)
        counters = doc.get("metrics", {}).get("counters", {})
    else:
        fail(path, f"unknown schema: {schema!r}")
    for name in args.require_counter:
        if name not in counters:
            fail(path, f"required counter {name} is absent")
    if args.require_exemplars:
        check_required_exemplars(path, doc, args.require_exemplars)
    if trace is not None:
        resolved, skipped = check_exemplars_against_trace(
            path, doc, trace[0], trace[1])
        detail += f"; {resolved} exemplar(s) resolved in trace"
        if skipped:
            detail += f", {skipped} from other sessions skipped"
        if args.require_exemplars and resolved == 0:
            fail(path, "no exemplar resolved against the trace (all from "
                       "other sessions?)")
    print(f"{path}: OK ({schema}; {detail})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this counter exists in the "
                             "(embedded) metrics snapshot")
    parser.add_argument("--require-exemplars", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this histogram carries at least "
                             "one tail exemplar (>= 80%% of its p99)")
    parser.add_argument("--trace", metavar="TRACE_JSON",
                        help="Chrome trace export to resolve exemplar "
                             "trace_id/span_id pairs against")
    args = parser.parse_args()
    status = 0
    trace = None
    if args.trace:
        try:
            trace = load_trace_spans(args.trace)
        except ValidationError as e:
            print(f"FAIL {e}", file=sys.stderr)
            return 1
    for path in args.files:
        try:
            validate_file(path, args, trace)
        except ValidationError as e:
            print(f"FAIL {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
