#!/usr/bin/env python3
"""Asserts the heat section actually attributes injected workload skew.

Takes hbtree.bench.v1 reports from ycsb_workloads runs of the zipfian,
hotspot, and uniform scenarios and checks the keyspace heatmap against
what each key chooser injected (meta.chooser selects the check):

  zipfian  — unscrambled zipf(0.99) ranks map onto the sorted key order,
             so the modelled hot mass of the first 10% of keys is the
             generalized harmonic ratio H_m(theta)/H_n(theta); the top-K
             ranges overlapping that prefix must attribute >= 90% of it,
             and the top range must be flagged hot.
  hotspot  — the chooser sends hot_op_fraction (0.9, as checked into the
             scenario matrix) of ops to the first hot_key_fraction (0.1)
             of keys; same >= 90% attribution bar.
  uniform  — the negative control: flat popularity sits ~4x under the
             hot threshold, so no range may be flagged hot.

The prefix boundary assumes the sequential bootstrap layout the workload
harness uses (key of record i is (i+1) * 8, see workload/dataset.cc);
meta.n supplies the record count.

Usage: scripts/check_heat.py REPORT.json [REPORT.json ...]
"""

import json
import math
import sys

# Mirrors the checked-in scenario matrix (src/workload/spec.cc) and the
# fixed-point zipf default (workload/key_chooser.h).
ZIPF_THETA = 0.99
HOT_KEY_FRACTION = 0.1
HOT_OP_FRACTION = 0.9
ATTRIBUTION_BAR = 0.9
KEY_STRIDE = 8  # sequential dataset: key of record i is (i + 1) * stride


def harmonic(n, theta):
    return sum(i ** -theta for i in range(1, n + 1))


def hot_prefix(meta):
    """(record count, boundary key) of the injected hot prefix."""
    n = int(meta["n"])
    hot_keys = math.ceil(HOT_KEY_FRACTION * n)
    return n, hot_keys, KEY_STRIDE * hot_keys


def attributed_count(heat, boundary_key):
    """Sketched accesses the top-K ranges attribute to the hot prefix.

    A bin-width range straddling the boundary counts fully — the sketch
    resolution, not the attribution, owns that rounding.
    """
    return sum(r["count"] for r in heat["keyspace"]["ranges"]
               if r["lo"] <= boundary_key)


def check_skewed(path, doc, expected_share, label):
    heat = doc["heat"]
    total = heat["keyspace"]["total"]
    if total == 0:
        print(f"FAIL {path}: heat section recorded no accesses",
              file=sys.stderr)
        return False
    _, hot_keys, boundary_key = hot_prefix(doc["meta"])
    expected = expected_share * total
    attributed = attributed_count(heat, boundary_key)
    ratio = attributed / expected if expected > 0 else 0.0
    ok = ratio >= ATTRIBUTION_BAR
    top = heat["keyspace"]["ranges"][0] if heat["keyspace"]["ranges"] else None
    if ok and (top is None or not top["hot"]):
        print(f"FAIL {path}: skewed scenario but the top range is not "
              f"flagged hot", file=sys.stderr)
        return False
    line = (f"{label}: modelled hot mass {expected_share:.3f} of {total} "
            f"accesses in the first {hot_keys} keys (<= key {boundary_key}); "
            f"top-K attributes {attributed} ({ratio:.1%} of expected, "
            f"bar {ATTRIBUTION_BAR:.0%})")
    if ok:
        print(f"{path}: OK ({line})")
    else:
        print(f"FAIL {path}: {line}", file=sys.stderr)
    return ok


def check_zipfian(path, doc):
    n, hot_keys, _ = hot_prefix(doc["meta"])
    share = harmonic(hot_keys, ZIPF_THETA) / harmonic(n, ZIPF_THETA)
    return check_skewed(path, doc, share, "zipfian")


def check_hotspot(path, doc):
    return check_skewed(path, doc, HOT_OP_FRACTION, "hotspot")


def check_uniform(path, doc):
    heat = doc["heat"]
    if heat["keyspace"]["total"] == 0:
        print(f"FAIL {path}: heat section recorded no accesses",
              file=sys.stderr)
        return False
    hot = [r for r in heat["keyspace"]["ranges"] if r["hot"]]
    if hot:
        print(f"FAIL {path}: uniform workload flagged {len(hot)} hot "
              f"range(s), e.g. [{hot[0]['lo']}, {hot[0]['hi']}] at share "
              f"{hot[0]['share']:.4f} (threshold "
              f"{heat['keyspace']['hot_threshold_share']:.4f}) — a false "
              f"hot range", file=sys.stderr)
        return False
    top_share = (heat["keyspace"]["ranges"][0]["share"]
                 if heat["keyspace"]["ranges"] else 0.0)
    print(f"{path}: OK (uniform control: no hot range; top share "
          f"{top_share:.4f} vs threshold "
          f"{heat['keyspace']['hot_threshold_share']:.4f})")
    return True


CHECKS = {
    "zipfian": check_zipfian,
    "hotspot": check_hotspot,
    "uniform": check_uniform,
}


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: cannot parse: {e}", file=sys.stderr)
        return False
    if "heat" not in doc:
        print(f"FAIL {path}: no heat section (built without "
              f"HBTREE_OBS_TRACING?)", file=sys.stderr)
        return False
    chooser = doc.get("meta", {}).get("chooser")
    check = CHECKS.get(chooser)
    if check is None:
        print(f"FAIL {path}: no attribution check for chooser "
              f"{chooser!r} (expected one of {sorted(CHECKS)})",
              file=sys.stderr)
        return False
    return check(path, doc)


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for path in sys.argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
