#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes.
#
#   scripts/check.sh            # release build + full ctest (tier-1 gate)
#   scripts/check.sh asan       # + AddressSanitizer/UBSan build and ctest
#   scripts/check.sh tsan       # + ThreadSanitizer build, concurrency tests
#   scripts/check.sh fault      # + fault-injection smoke under asan and tsan
#   scripts/check.sh obs        # + observability smoke: fault-injected serve
#                               #   bench, metrics JSON + trace validation
#   scripts/check.sh shard      # + sharded serving stress under asan and
#                               #   tsan, plus a multi-shard bench smoke
#   scripts/check.sh regress    # + bench regression sentinel: rerun the
#                               #   serving bench at the checked-in
#                               #   baseline's workload and diff against
#                               #   BENCH_serve.json with bench_compare.py
#   scripts/check.sh workloads  # + YCSB scenario matrix: run every
#                               #   workload through the serving layer,
#                               #   validate the reports, diff against
#                               #   the BENCH_workloads/ baselines
#   scripts/check.sh qos        # + multi-tenant QoS gate: overload sweep
#                               #   to 10x modelled capacity, per-tenant
#                               #   metrics/exemplar validation, diff
#                               #   against BENCH_overload.json
#   scripts/check.sh heat       # + heat observability gate: fixed-seed
#                               #   zipfian/hotspot/uniform runs, heat
#                               #   section validation, hot-range
#                               #   attribution assertions
#   scripts/check.sh fastpath   # + hot-path gate: level-wise dispatch
#                               #   reconciliation and gapped-leaf
#                               #   differential tests, then a serve run
#                               #   whose heat.kernel block must show the
#                               #   per-level dedup actually collapsing
#   scripts/check.sh all        # all of the above
#
# The release pass is the acceptance gate every change must keep green;
# the sanitizer passes are the hardening net for memory and threading
# bugs (see README, "Sanitizers").

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
mode="${1:-release}"

run_release() {
  echo "==> release build + tests"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs"
  ctest --preset release -j "$jobs"
}

run_asan() {
  echo "==> asan/ubsan build + tests"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan -j "$jobs"
}

run_tsan() {
  echo "==> tsan build + concurrency tests"
  cmake --preset tsan >/dev/null
  # Only the concurrent suites matter under TSan; building just those
  # targets keeps the pass affordable on small machines.
  cmake --build --preset tsan -j "$jobs" --target serve_stress_test \
      serve_shard_stress_test serve_fault_test serve_workload_test \
      admission_queue_test metrics_test trace_export_test heat_test \
      levelwise_pipeline_test gapped_leaf_diff_test
  (cd build-tsan && ctest -R 'serve_(stress|shard_stress|fault|workload)_test|admission_queue_test|metrics_test|trace_export_test|heat_test|levelwise_pipeline_test|gapped_leaf_diff_test' --output-on-failure)
}

run_shard() {
  echo "==> sharded serving stress (asan + tsan) + multi-shard bench smoke"
  # The sharded suite is the data-race magnet of the serving layer:
  # multiple read workers per shard against one pinned snapshot and its
  # shared simulated device, plus per-shard update committers.
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs" --target serve_shard_stress_test
  (cd build-asan && ctest -R serve_shard_stress_test --output-on-failure)
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs" --target serve_shard_stress_test
  (cd build-tsan && ctest -R serve_shard_stress_test --output-on-failure)
  # Short 4-shard x 2-worker bench run: exercises the sweep plumbing and
  # the modelled-capacity column end to end.
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" --target serve_throughput
  ./build/bench/serve_throughput --n_log2=16 --lookups=8192 --updates=4096 \
      --shards=4 --read_workers=2 \
      --metrics_json=build/SHARD_smoke.json
  python3 scripts/validate_metrics.py \
      --require-counter serve.lookups \
      --require-counter serve.shard0.read_buckets \
      --require-counter serve.shard3.read_buckets \
      build/SHARD_smoke.json
}

run_fault() {
  echo "==> fault-injection smoke (asan + tsan)"
  # The fault suites run fixed seeds, so a pass here is reproducible: the
  # same injected transfer/kernel faults, the same breaker transitions.
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$jobs" --target fault_injector_test serve_fault_test
  (cd build-asan && ctest -R '(fault_injector|serve_fault)_test' --output-on-failure)
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$jobs" --target serve_fault_test
  (cd build-tsan && ctest -R serve_fault_test --output-on-failure)
}

run_obs() {
  echo "==> observability smoke (fault-injected serve + metrics/trace validation)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" --target serve_fault_tolerance obs_overhead
  # Short fault-injected serving run: retries=0 with small buckets forces
  # real breaker activity, so the metrics JSON and the trace carry the
  # fault-tolerance signals, not just zeros.
  ./build/bench/serve_fault_tolerance --n_log2=16 --lookups=4096 --updates=2048 \
      --retries=0 --bucket_log2=10 \
      --metrics_json=build/OBS_fault_metrics.json \
      --trace_out=build/OBS_fault_trace.json
  python3 scripts/validate_metrics.py \
      --require-counter serve.lookups \
      --require-counter serve.read_buckets \
      --require-counter gpusim.bytes_h2d \
      build/OBS_fault_metrics.json
  python3 -c "
import json
d = json.load(open('build/OBS_fault_trace.json'))
assert d['traceEvents'], 'trace has no events'
print('build/OBS_fault_trace.json: OK (%d events)' % len(d['traceEvents']))"
  # Tracing must stay free when compiled out (<2% on the hot loop).
  ./build/bench/obs_overhead --iters=131072 --reps=9 \
      --metrics_json=build/OBS_overhead.json
  python3 scripts/validate_metrics.py build/OBS_overhead.json
}

run_workloads() {
  echo "==> YCSB workload matrix (reports + per-workload regression gate)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" --target ycsb_workloads
  # Default flags reproduce the checked-in baselines' workloads exactly
  # (bench_compare.py's meta check enforces scenario/mix/seed identity).
  ./build/bench/ycsb_workloads --out_dir=build/WORKLOADS
  for base in BENCH_workloads/*.json; do
    cand="build/WORKLOADS/$(basename "$base")"
    python3 scripts/validate_metrics.py \
        --require-counter serve.lookups \
        --require-counter serve.shard0.read_buckets \
        "$cand"
    # The op streams are seeded, so the workload-shape columns (scans,
    # scan_items, inserts, hit_rate) are near-deterministic and get
    # tight bands — they catch harness/semantic drift. The timing
    # columns on these sub-second open-loop runs swing with host load
    # (bucket fill is arrival-timing-driven), so wall/modelled/latency
    # bands are wide and only catch order-of-magnitude collapses; tight
    # perf tracking stays with `check.sh regress`.
    python3 scripts/bench_compare.py \
        --tolerance 0.85 \
        --stage-tolerance 0.25 \
        --metric-tolerance hit_rate=0.05 \
        --metric-tolerance scans=0.01 \
        --metric-tolerance scan_items=0.05 \
        --metric-tolerance inserts=0.01 \
        --metric-tolerance read_p50_us=4.0 \
        --metric-tolerance read_p99_us=4.0 \
        --metric-tolerance queue_wait_p99_us=6.0 \
        "$base" "$cand"
  done
}

run_regress() {
  echo "==> bench regression sentinel (serve_throughput vs BENCH_serve.json)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" --target serve_throughput
  # Default flags reproduce the checked-in baseline's workload (the meta
  # check in bench_compare.py enforces that). The trace covers the last
  # sweep run — the same run whose metrics snapshot the report embeds —
  # so the exemplar links can be resolved end to end.
  ./build/bench/serve_throughput \
      --metrics_json=build/REGRESS_serve.json \
      --trace_out=build/REGRESS_trace.json
  python3 scripts/validate_metrics.py \
      --require-counter serve.lookups \
      --require-exemplars serve.read_latency \
      --trace build/REGRESS_trace.json \
      build/REGRESS_serve.json
  # Wall-clock throughput/latency move with the host (the histogram's
  # log buckets alone quantize tails by ~12% per step, and a loaded or
  # small-core machine doubles queue waits), so those bands are wide;
  # the modelled numbers come off the simulated platform clock and get
  # tight ones. Catches the "someone made serving 2x slower" class, not
  # single-digit noise. Modelled capacity is the exception among the
  # modelled columns: it divides by the busiest-shard makespan, which
  # moves with how the admission stream happens to pack into buckets
  # (adaptive sizing included) — observed run-to-run spread on a loaded
  # single-core host is ~±15-30%, so its band is wider than the other
  # modelled numbers.
  python3 scripts/bench_compare.py \
      --tolerance 0.5 \
      --stage-tolerance 0.15 \
      --metric-tolerance modelled_ops_per_s=0.35 \
      --metric-tolerance modelled_vs_baseline=0.35 \
      --metric-tolerance hit_rate=0.02 \
      --metric-tolerance read_p50_us=1.0 \
      --metric-tolerance read_p99_us=1.0 \
      --metric-tolerance queue_wait_p99_us=2.0 \
      BENCH_serve.json build/REGRESS_serve.json
}

run_qos() {
  echo "==> multi-tenant QoS gate (serve_overload vs BENCH_overload.json)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" --target serve_overload
  # Fixed seed plus model pacing make the sweep reproducible across
  # hosts; the bench itself exits 1 when a QoS invariant breaks (any
  # high-priority shed, high-priority p99 over its SLO, hostile tenant
  # locked out, or hostile shed ratio under 0.5 at the 10x point).
  ./build/bench/serve_overload --n_log2=16 --probe_ops=8192 --seconds=1 \
      --pacing=1500 --seed=1 \
      --metrics_json=build/QOS_overload.json \
      --trace_out=build/QOS_trace.json
  python3 scripts/validate_metrics.py \
      --require-counter serve.tenant0.lookups \
      --require-counter serve.tenant2.shed_reads \
      --require-exemplars serve.read_latency \
      --require-exemplars serve.tenant0.read_latency \
      --trace build/QOS_trace.json \
      build/QOS_overload.json
  # The hard guarantees are gated inside the bench; the compare bands
  # catch drift in the per-tenant goodput split and the latency shape.
  # Open-loop arrival timing makes served/goodput and the modelled
  # makespan host-sensitive, hence the wide bands.
  python3 scripts/bench_compare.py \
      --tolerance 0.6 \
      --stage-tolerance 0.25 \
      --metric-tolerance read_p50_us=2.0 \
      --metric-tolerance read_p99_us=2.0 \
      --metric-tolerance queue_wait_p99_us=3.0 \
      --metric-tolerance modelled_ops_per_s=0.9 \
      BENCH_overload.json build/QOS_overload.json
}

run_heat() {
  echo "==> heat observability gate (hot-range attribution on skewed scenarios)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" --target ycsb_workloads
  # Fixed-seed runs of the two skewed scenarios plus the uniform negative
  # control. Every report must carry a heat section whose internals
  # reconcile (validate_metrics.py), and the keyspace heatmap must
  # attribute >= 90% of the modelled hot mass to the injected hot prefix
  # — with no false hot range on the flat workload (check_heat.py).
  for s in zipfian hotspot uniform; do
    ./build/bench/ycsb_workloads --scenario="$s" --out_dir=build/HEAT
  done
  python3 scripts/validate_metrics.py --require-heat \
      --require-counter serve.lookups \
      build/HEAT/zipfian.json build/HEAT/hotspot.json build/HEAT/uniform.json
  python3 scripts/check_heat.py \
      build/HEAT/zipfian.json build/HEAT/hotspot.json build/HEAT/uniform.json
}

run_fastpath() {
  echo "==> fast-path gate (level-wise dispatch + gapped leaves + delta sync)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$jobs" \
      --target levelwise_pipeline_test gapped_leaf_diff_test serve_throughput
  # The C++ side: exact reconciliation of per-level kernel node loads
  # against host-replayed descents, pipeline answer equivalence with the
  # dispatch on/off, the gapped-leaf differential suite, and the
  # delta-sync fault fallback.
  (cd build && ctest -R '(levelwise_pipeline|gapped_leaf_diff)_test' --output-on-failure)
  # End to end: a serve run at the baseline workload must emit a
  # heat.kernel block whose per-level loads sit in [1, queries] and whose
  # totals collapse strictly below one-load-per-query — the level-wise
  # dedup visibly firing in the shipped report, not just in unit tests.
  ./build/bench/serve_throughput --metrics_json=build/FASTPATH_serve.json
  python3 scripts/validate_metrics.py --require-heat \
      --require-counter serve.lookups \
      build/FASTPATH_serve.json
  python3 -c "
import json
heat = json.load(open('build/FASTPATH_serve.json'))['heat']
kernel = heat['kernel']
assert kernel['launches'] > 0, 'serve run launched no level-wise kernels'
assert sum(kernel['node_loads']) > 0, 'kernel block recorded no node loads'
print('build/FASTPATH_serve.json: kernel dedup %d/%d loads over %d launches'
      % (sum(kernel['node_loads']), sum(kernel['node_queries']),
         kernel['launches']))"
}

case "$mode" in
  release) run_release ;;
  asan)    run_release; run_asan; run_obs ;;
  tsan)    run_release; run_tsan; run_obs ;;
  fault)   run_release; run_fault ;;
  obs)     run_release; run_obs ;;
  shard)   run_release; run_shard ;;
  regress) run_release; run_regress ;;
  workloads) run_release; run_workloads ;;
  qos)     run_release; run_qos ;;
  heat)    run_release; run_heat ;;
  fastpath) run_release; run_fastpath ;;
  all)     run_release; run_asan; run_tsan; run_fault; run_obs; run_shard; run_regress; run_workloads; run_qos; run_heat; run_fastpath ;;
  *) echo "usage: scripts/check.sh [release|asan|tsan|fault|obs|shard|regress|workloads|qos|heat|fastpath|all]" >&2; exit 2 ;;
esac

echo "==> all requested checks passed"
