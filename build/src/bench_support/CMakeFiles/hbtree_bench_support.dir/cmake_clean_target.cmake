file(REMOVE_RECURSE
  "libhbtree_bench_support.a"
)
