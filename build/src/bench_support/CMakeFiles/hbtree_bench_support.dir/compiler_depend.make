# Empty compiler generated dependencies file for hbtree_bench_support.
# This may be replaced when dependencies are built.
