file(REMOVE_RECURSE
  "CMakeFiles/hbtree_bench_support.dir/args.cc.o"
  "CMakeFiles/hbtree_bench_support.dir/args.cc.o.d"
  "CMakeFiles/hbtree_bench_support.dir/table.cc.o"
  "CMakeFiles/hbtree_bench_support.dir/table.cc.o.d"
  "libhbtree_bench_support.a"
  "libhbtree_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
