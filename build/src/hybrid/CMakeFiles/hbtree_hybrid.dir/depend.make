# Empty dependencies file for hbtree_hybrid.
# This may be replaced when dependencies are built.
