file(REMOVE_RECURSE
  "CMakeFiles/hbtree_hybrid.dir/batch_update.cc.o"
  "CMakeFiles/hbtree_hybrid.dir/batch_update.cc.o.d"
  "CMakeFiles/hbtree_hybrid.dir/bucket_pipeline.cc.o"
  "CMakeFiles/hbtree_hybrid.dir/bucket_pipeline.cc.o.d"
  "libhbtree_hybrid.a"
  "libhbtree_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
