file(REMOVE_RECURSE
  "libhbtree_hybrid.a"
)
