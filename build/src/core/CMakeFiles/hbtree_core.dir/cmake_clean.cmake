file(REMOVE_RECURSE
  "CMakeFiles/hbtree_core.dir/distributions.cc.o"
  "CMakeFiles/hbtree_core.dir/distributions.cc.o.d"
  "CMakeFiles/hbtree_core.dir/simd.cc.o"
  "CMakeFiles/hbtree_core.dir/simd.cc.o.d"
  "CMakeFiles/hbtree_core.dir/workload.cc.o"
  "CMakeFiles/hbtree_core.dir/workload.cc.o.d"
  "libhbtree_core.a"
  "libhbtree_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
