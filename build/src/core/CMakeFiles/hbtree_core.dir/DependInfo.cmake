
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distributions.cc" "src/core/CMakeFiles/hbtree_core.dir/distributions.cc.o" "gcc" "src/core/CMakeFiles/hbtree_core.dir/distributions.cc.o.d"
  "/root/repo/src/core/simd.cc" "src/core/CMakeFiles/hbtree_core.dir/simd.cc.o" "gcc" "src/core/CMakeFiles/hbtree_core.dir/simd.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/hbtree_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/hbtree_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
