file(REMOVE_RECURSE
  "libhbtree_core.a"
)
