# Empty dependencies file for hbtree_core.
# This may be replaced when dependencies are built.
