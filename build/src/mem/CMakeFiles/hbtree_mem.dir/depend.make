# Empty dependencies file for hbtree_mem.
# This may be replaced when dependencies are built.
