file(REMOVE_RECURSE
  "libhbtree_mem.a"
)
