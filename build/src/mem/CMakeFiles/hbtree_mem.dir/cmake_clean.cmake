file(REMOVE_RECURSE
  "CMakeFiles/hbtree_mem.dir/page_allocator.cc.o"
  "CMakeFiles/hbtree_mem.dir/page_allocator.cc.o.d"
  "libhbtree_mem.a"
  "libhbtree_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
