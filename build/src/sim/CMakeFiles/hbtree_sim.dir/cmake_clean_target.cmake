file(REMOVE_RECURSE
  "libhbtree_sim.a"
)
