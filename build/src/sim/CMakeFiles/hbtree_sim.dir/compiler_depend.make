# Empty compiler generated dependencies file for hbtree_sim.
# This may be replaced when dependencies are built.
