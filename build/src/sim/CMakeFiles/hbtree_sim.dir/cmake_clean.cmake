file(REMOVE_RECURSE
  "CMakeFiles/hbtree_sim.dir/cache_sim.cc.o"
  "CMakeFiles/hbtree_sim.dir/cache_sim.cc.o.d"
  "CMakeFiles/hbtree_sim.dir/cpu_cost_model.cc.o"
  "CMakeFiles/hbtree_sim.dir/cpu_cost_model.cc.o.d"
  "CMakeFiles/hbtree_sim.dir/platform.cc.o"
  "CMakeFiles/hbtree_sim.dir/platform.cc.o.d"
  "CMakeFiles/hbtree_sim.dir/tlb_sim.cc.o"
  "CMakeFiles/hbtree_sim.dir/tlb_sim.cc.o.d"
  "libhbtree_sim.a"
  "libhbtree_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
