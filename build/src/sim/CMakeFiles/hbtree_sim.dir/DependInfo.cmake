
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_sim.cc" "src/sim/CMakeFiles/hbtree_sim.dir/cache_sim.cc.o" "gcc" "src/sim/CMakeFiles/hbtree_sim.dir/cache_sim.cc.o.d"
  "/root/repo/src/sim/cpu_cost_model.cc" "src/sim/CMakeFiles/hbtree_sim.dir/cpu_cost_model.cc.o" "gcc" "src/sim/CMakeFiles/hbtree_sim.dir/cpu_cost_model.cc.o.d"
  "/root/repo/src/sim/platform.cc" "src/sim/CMakeFiles/hbtree_sim.dir/platform.cc.o" "gcc" "src/sim/CMakeFiles/hbtree_sim.dir/platform.cc.o.d"
  "/root/repo/src/sim/tlb_sim.cc" "src/sim/CMakeFiles/hbtree_sim.dir/tlb_sim.cc.o" "gcc" "src/sim/CMakeFiles/hbtree_sim.dir/tlb_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hbtree_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hbtree_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
