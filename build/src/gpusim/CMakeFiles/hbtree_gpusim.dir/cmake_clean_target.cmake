file(REMOVE_RECURSE
  "libhbtree_gpusim.a"
)
