
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cost_model.cc" "src/gpusim/CMakeFiles/hbtree_gpusim.dir/cost_model.cc.o" "gcc" "src/gpusim/CMakeFiles/hbtree_gpusim.dir/cost_model.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/hbtree_gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/hbtree_gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/warp.cc" "src/gpusim/CMakeFiles/hbtree_gpusim.dir/warp.cc.o" "gcc" "src/gpusim/CMakeFiles/hbtree_gpusim.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hbtree_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbtree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hbtree_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
