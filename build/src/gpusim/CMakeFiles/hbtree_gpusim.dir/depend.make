# Empty dependencies file for hbtree_gpusim.
# This may be replaced when dependencies are built.
