file(REMOVE_RECURSE
  "CMakeFiles/hbtree_gpusim.dir/cost_model.cc.o"
  "CMakeFiles/hbtree_gpusim.dir/cost_model.cc.o.d"
  "CMakeFiles/hbtree_gpusim.dir/device.cc.o"
  "CMakeFiles/hbtree_gpusim.dir/device.cc.o.d"
  "CMakeFiles/hbtree_gpusim.dir/warp.cc.o"
  "CMakeFiles/hbtree_gpusim.dir/warp.cc.o.d"
  "libhbtree_gpusim.a"
  "libhbtree_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
