# Empty dependencies file for hbtree_io.
# This may be replaced when dependencies are built.
