file(REMOVE_RECURSE
  "CMakeFiles/hbtree_io.dir/tree_io.cc.o"
  "CMakeFiles/hbtree_io.dir/tree_io.cc.o.d"
  "libhbtree_io.a"
  "libhbtree_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbtree_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
