file(REMOVE_RECURSE
  "libhbtree_io.a"
)
