# Empty dependencies file for pipelined_search_test.
# This may be replaced when dependencies are built.
