file(REMOVE_RECURSE
  "CMakeFiles/pipelined_search_test.dir/pipelined_search_test.cc.o"
  "CMakeFiles/pipelined_search_test.dir/pipelined_search_test.cc.o.d"
  "pipelined_search_test"
  "pipelined_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
