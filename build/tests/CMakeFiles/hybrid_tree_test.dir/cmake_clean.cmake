file(REMOVE_RECURSE
  "CMakeFiles/hybrid_tree_test.dir/hybrid_tree_test.cc.o"
  "CMakeFiles/hybrid_tree_test.dir/hybrid_tree_test.cc.o.d"
  "hybrid_tree_test"
  "hybrid_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
