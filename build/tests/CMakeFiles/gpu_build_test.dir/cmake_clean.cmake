file(REMOVE_RECURSE
  "CMakeFiles/gpu_build_test.dir/gpu_build_test.cc.o"
  "CMakeFiles/gpu_build_test.dir/gpu_build_test.cc.o.d"
  "gpu_build_test"
  "gpu_build_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
