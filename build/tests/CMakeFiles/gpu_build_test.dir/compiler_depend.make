# Empty compiler generated dependencies file for gpu_build_test.
# This may be replaced when dependencies are built.
