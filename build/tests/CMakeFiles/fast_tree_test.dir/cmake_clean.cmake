file(REMOVE_RECURSE
  "CMakeFiles/fast_tree_test.dir/fast_tree_test.cc.o"
  "CMakeFiles/fast_tree_test.dir/fast_tree_test.cc.o.d"
  "fast_tree_test"
  "fast_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
