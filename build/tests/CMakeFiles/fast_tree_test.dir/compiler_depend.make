# Empty compiler generated dependencies file for fast_tree_test.
# This may be replaced when dependencies are built.
