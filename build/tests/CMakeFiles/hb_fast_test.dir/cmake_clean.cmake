file(REMOVE_RECURSE
  "CMakeFiles/hb_fast_test.dir/hb_fast_test.cc.o"
  "CMakeFiles/hb_fast_test.dir/hb_fast_test.cc.o.d"
  "hb_fast_test"
  "hb_fast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_fast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
