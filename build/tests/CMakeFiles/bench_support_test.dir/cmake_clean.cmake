file(REMOVE_RECURSE
  "CMakeFiles/bench_support_test.dir/bench_support_test.cc.o"
  "CMakeFiles/bench_support_test.dir/bench_support_test.cc.o.d"
  "bench_support_test"
  "bench_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
