file(REMOVE_RECURSE
  "CMakeFiles/implicit_btree_test.dir/implicit_btree_test.cc.o"
  "CMakeFiles/implicit_btree_test.dir/implicit_btree_test.cc.o.d"
  "implicit_btree_test"
  "implicit_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implicit_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
