# Empty compiler generated dependencies file for implicit_btree_test.
# This may be replaced when dependencies are built.
