file(REMOVE_RECURSE
  "CMakeFiles/range_pipeline_test.dir/range_pipeline_test.cc.o"
  "CMakeFiles/range_pipeline_test.dir/range_pipeline_test.cc.o.d"
  "range_pipeline_test"
  "range_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
