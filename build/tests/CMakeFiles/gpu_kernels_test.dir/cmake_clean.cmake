file(REMOVE_RECURSE
  "CMakeFiles/gpu_kernels_test.dir/gpu_kernels_test.cc.o"
  "CMakeFiles/gpu_kernels_test.dir/gpu_kernels_test.cc.o.d"
  "gpu_kernels_test"
  "gpu_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
