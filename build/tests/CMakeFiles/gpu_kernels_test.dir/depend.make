# Empty dependencies file for gpu_kernels_test.
# This may be replaced when dependencies are built.
