file(REMOVE_RECURSE
  "CMakeFiles/batch_update_test.dir/batch_update_test.cc.o"
  "CMakeFiles/batch_update_test.dir/batch_update_test.cc.o.d"
  "batch_update_test"
  "batch_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
