file(REMOVE_RECURSE
  "CMakeFiles/regular_btree_test.dir/regular_btree_test.cc.o"
  "CMakeFiles/regular_btree_test.dir/regular_btree_test.cc.o.d"
  "regular_btree_test"
  "regular_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regular_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
