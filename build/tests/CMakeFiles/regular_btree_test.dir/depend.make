# Empty dependencies file for regular_btree_test.
# This may be replaced when dependencies are built.
