# Empty dependencies file for fig08_node_search.
# This may be replaced when dependencies are built.
