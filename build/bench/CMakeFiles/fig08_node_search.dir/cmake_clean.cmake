file(REMOVE_RECURSE
  "CMakeFiles/fig08_node_search.dir/fig08_node_search.cc.o"
  "CMakeFiles/fig08_node_search.dir/fig08_node_search.cc.o.d"
  "fig08_node_search"
  "fig08_node_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_node_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
