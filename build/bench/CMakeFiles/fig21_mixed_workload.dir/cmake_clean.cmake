file(REMOVE_RECURSE
  "CMakeFiles/fig21_mixed_workload.dir/fig21_mixed_workload.cc.o"
  "CMakeFiles/fig21_mixed_workload.dir/fig21_mixed_workload.cc.o.d"
  "fig21_mixed_workload"
  "fig21_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
