# Empty compiler generated dependencies file for fig21_mixed_workload.
# This may be replaced when dependencies are built.
