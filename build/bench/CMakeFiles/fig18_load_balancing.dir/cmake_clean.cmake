file(REMOVE_RECURSE
  "CMakeFiles/fig18_load_balancing.dir/fig18_load_balancing.cc.o"
  "CMakeFiles/fig18_load_balancing.dir/fig18_load_balancing.cc.o.d"
  "fig18_load_balancing"
  "fig18_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
