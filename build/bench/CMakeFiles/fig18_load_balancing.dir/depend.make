# Empty dependencies file for fig18_load_balancing.
# This may be replaced when dependencies are built.
