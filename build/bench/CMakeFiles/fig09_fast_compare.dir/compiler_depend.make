# Empty compiler generated dependencies file for fig09_fast_compare.
# This may be replaced when dependencies are built.
