file(REMOVE_RECURSE
  "CMakeFiles/fig09_fast_compare.dir/fig09_fast_compare.cc.o"
  "CMakeFiles/fig09_fast_compare.dir/fig09_fast_compare.cc.o.d"
  "fig09_fast_compare"
  "fig09_fast_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fast_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
