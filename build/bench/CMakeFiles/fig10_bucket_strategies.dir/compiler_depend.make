# Empty compiler generated dependencies file for fig10_bucket_strategies.
# This may be replaced when dependencies are built.
