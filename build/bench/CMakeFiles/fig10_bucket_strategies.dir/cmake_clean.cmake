file(REMOVE_RECURSE
  "CMakeFiles/fig10_bucket_strategies.dir/fig10_bucket_strategies.cc.o"
  "CMakeFiles/fig10_bucket_strategies.dir/fig10_bucket_strategies.cc.o.d"
  "fig10_bucket_strategies"
  "fig10_bucket_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bucket_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
