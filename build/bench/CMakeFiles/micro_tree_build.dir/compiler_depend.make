# Empty compiler generated dependencies file for micro_tree_build.
# This may be replaced when dependencies are built.
