file(REMOVE_RECURSE
  "CMakeFiles/micro_tree_build.dir/micro_tree_build.cc.o"
  "CMakeFiles/micro_tree_build.dir/micro_tree_build.cc.o.d"
  "micro_tree_build"
  "micro_tree_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tree_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
