file(REMOVE_RECURSE
  "CMakeFiles/ext_gpu_build.dir/ext_gpu_build.cc.o"
  "CMakeFiles/ext_gpu_build.dir/ext_gpu_build.cc.o.d"
  "ext_gpu_build"
  "ext_gpu_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gpu_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
