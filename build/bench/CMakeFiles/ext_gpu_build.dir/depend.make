# Empty dependencies file for ext_gpu_build.
# This may be replaced when dependencies are built.
