file(REMOVE_RECURSE
  "CMakeFiles/fig15_implicit_update.dir/fig15_implicit_update.cc.o"
  "CMakeFiles/fig15_implicit_update.dir/fig15_implicit_update.cc.o.d"
  "fig15_implicit_update"
  "fig15_implicit_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_implicit_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
