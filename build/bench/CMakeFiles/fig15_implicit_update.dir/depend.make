# Empty dependencies file for fig15_implicit_update.
# This may be replaced when dependencies are built.
