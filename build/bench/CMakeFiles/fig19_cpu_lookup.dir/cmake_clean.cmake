file(REMOVE_RECURSE
  "CMakeFiles/fig19_cpu_lookup.dir/fig19_cpu_lookup.cc.o"
  "CMakeFiles/fig19_cpu_lookup.dir/fig19_cpu_lookup.cc.o.d"
  "fig19_cpu_lookup"
  "fig19_cpu_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_cpu_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
