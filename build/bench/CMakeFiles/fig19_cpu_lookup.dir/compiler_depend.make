# Empty compiler generated dependencies file for fig19_cpu_lookup.
# This may be replaced when dependencies are built.
