# Empty compiler generated dependencies file for fig07_page_config.
# This may be replaced when dependencies are built.
