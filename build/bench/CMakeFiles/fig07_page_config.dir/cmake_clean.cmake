file(REMOVE_RECURSE
  "CMakeFiles/fig07_page_config.dir/fig07_page_config.cc.o"
  "CMakeFiles/fig07_page_config.dir/fig07_page_config.cc.o.d"
  "fig07_page_config"
  "fig07_page_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_page_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
