# Empty dependencies file for fig20_swp_depth.
# This may be replaced when dependencies are built.
