file(REMOVE_RECURSE
  "CMakeFiles/fig20_swp_depth.dir/fig20_swp_depth.cc.o"
  "CMakeFiles/fig20_swp_depth.dir/fig20_swp_depth.cc.o.d"
  "fig20_swp_depth"
  "fig20_swp_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_swp_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
