# Empty dependencies file for fig13_update_methods.
# This may be replaced when dependencies are built.
