file(REMOVE_RECURSE
  "CMakeFiles/fig13_update_methods.dir/fig13_update_methods.cc.o"
  "CMakeFiles/fig13_update_methods.dir/fig13_update_methods.cc.o.d"
  "fig13_update_methods"
  "fig13_update_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_update_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
