# Empty compiler generated dependencies file for micro_node_search.
# This may be replaced when dependencies are built.
