file(REMOVE_RECURSE
  "CMakeFiles/micro_node_search.dir/micro_node_search.cc.o"
  "CMakeFiles/micro_node_search.dir/micro_node_search.cc.o.d"
  "micro_node_search"
  "micro_node_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_node_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
