file(REMOVE_RECURSE
  "CMakeFiles/fig14_batch_size.dir/fig14_batch_size.cc.o"
  "CMakeFiles/fig14_batch_size.dir/fig14_batch_size.cc.o.d"
  "fig14_batch_size"
  "fig14_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
