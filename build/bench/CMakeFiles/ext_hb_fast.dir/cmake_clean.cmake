file(REMOVE_RECURSE
  "CMakeFiles/ext_hb_fast.dir/ext_hb_fast.cc.o"
  "CMakeFiles/ext_hb_fast.dir/ext_hb_fast.cc.o.d"
  "ext_hb_fast"
  "ext_hb_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hb_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
