
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_hb_fast.cc" "bench/CMakeFiles/ext_hb_fast.dir/ext_hb_fast.cc.o" "gcc" "bench/CMakeFiles/ext_hb_fast.dir/ext_hb_fast.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/hbtree_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/hbtree_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hbtree_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbtree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hbtree_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hbtree_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
