# Empty compiler generated dependencies file for ext_hb_fast.
# This may be replaced when dependencies are built.
