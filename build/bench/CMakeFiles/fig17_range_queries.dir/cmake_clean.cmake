file(REMOVE_RECURSE
  "CMakeFiles/fig17_range_queries.dir/fig17_range_queries.cc.o"
  "CMakeFiles/fig17_range_queries.dir/fig17_range_queries.cc.o.d"
  "fig17_range_queries"
  "fig17_range_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_range_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
