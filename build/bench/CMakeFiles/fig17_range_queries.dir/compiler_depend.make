# Empty compiler generated dependencies file for fig17_range_queries.
# This may be replaced when dependencies are built.
