# Empty compiler generated dependencies file for micro_pipelined_search.
# This may be replaced when dependencies are built.
