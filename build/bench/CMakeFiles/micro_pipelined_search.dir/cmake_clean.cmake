file(REMOVE_RECURSE
  "CMakeFiles/micro_pipelined_search.dir/micro_pipelined_search.cc.o"
  "CMakeFiles/micro_pipelined_search.dir/micro_pipelined_search.cc.o.d"
  "micro_pipelined_search"
  "micro_pipelined_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pipelined_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
