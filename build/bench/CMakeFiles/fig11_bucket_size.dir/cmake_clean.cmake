file(REMOVE_RECURSE
  "CMakeFiles/fig11_bucket_size.dir/fig11_bucket_size.cc.o"
  "CMakeFiles/fig11_bucket_size.dir/fig11_bucket_size.cc.o.d"
  "fig11_bucket_size"
  "fig11_bucket_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bucket_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
