file(REMOVE_RECURSE
  "CMakeFiles/fig16_throughput.dir/fig16_throughput.cc.o"
  "CMakeFiles/fig16_throughput.dir/fig16_throughput.cc.o.d"
  "fig16_throughput"
  "fig16_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
