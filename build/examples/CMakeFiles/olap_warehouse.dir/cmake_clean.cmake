file(REMOVE_RECURSE
  "CMakeFiles/olap_warehouse.dir/olap_warehouse.cpp.o"
  "CMakeFiles/olap_warehouse.dir/olap_warehouse.cpp.o.d"
  "olap_warehouse"
  "olap_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
