# Empty compiler generated dependencies file for olap_warehouse.
# This may be replaced when dependencies are built.
