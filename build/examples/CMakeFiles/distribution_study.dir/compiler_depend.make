# Empty compiler generated dependencies file for distribution_study.
# This may be replaced when dependencies are built.
