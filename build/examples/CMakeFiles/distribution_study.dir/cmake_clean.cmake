file(REMOVE_RECURSE
  "CMakeFiles/distribution_study.dir/distribution_study.cpp.o"
  "CMakeFiles/distribution_study.dir/distribution_study.cpp.o.d"
  "distribution_study"
  "distribution_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
