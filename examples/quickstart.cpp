// Quickstart: build an HB+-tree, run point lookups through the
// heterogeneous CPU-GPU pipeline, run a range query, and apply a batch
// update — the whole public API in one file.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/workload.h"
#include "gpusim/device.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_regular.h"
#include "sim/platform.h"

using namespace hbtree;

int main() {
  // 1. A simulated heterogeneous platform: Xeon E5-2665 + GTX 780.
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  gpu::Device device(platform.gpu);
  gpu::TransferEngine transfer(&device, platform.pcie);
  PageRegistry registry;  // tracks page sizes for the TLB model

  // 2. Build a regular (updatable) HB+-tree over 1M key-value pairs.
  //    The inner-node segment is mirrored into GPU memory; leaves stay in
  //    host memory.
  auto data = GenerateDataset<Key64>(1'000'000, /*seed=*/7);
  HBRegularTree<Key64>::Config config;
  config.tree.leaf_fill = 0.8;  // leave room for inserts
  HBRegularTree<Key64> tree(config, &registry, &device, &transfer);
  if (!tree.Build(data)) {
    std::fprintf(stderr, "I-segment does not fit in GPU memory\n");
    return 1;
  }
  std::printf("built: %zu pairs, height %d, I-segment %.1f MB (on GPU), "
              "L-segment %.1f MB (host)\n",
              tree.host_tree().size(), tree.host_tree().height(),
              tree.i_segment_bytes() / 1e6,
              tree.host_tree().l_segment_bytes() / 1e6);

  // 3. Point lookups through the CPU-GPU pipeline: queries travel to the
  //    GPU in buckets, the GPU resolves all inner levels, the CPU
  //    finishes in the leaves.
  auto queries = MakeLookupQueries(data, /*seed=*/8);
  queries.resize(100'000);
  PipelineConfig pipeline;
  pipeline.bucket_size = 16 * 1024;
  pipeline.cpu_queries_per_us = 200;  // see bench_support/calibrate.h
  std::vector<LookupResult<Key64>> results;
  PipelineStats stats = RunSearchPipeline(tree, queries.data(),
                                          queries.size(), pipeline,
                                          &results);
  std::size_t hits = 0;
  for (const auto& r : results) hits += r.found;
  std::printf("pipeline: %zu/%zu hits, %.0f MQPS (simulated platform), "
              "GPU did %llu warp launches worth %llu memory transactions\n",
              hits, results.size(), stats.mqps,
              static_cast<unsigned long long>(stats.kernel.warps_executed),
              static_cast<unsigned long long>(
                  stats.kernel.memory_transactions));

  // 4. A range query (CPU API; the leaf chain makes scans sequential).
  KeyValue<Key64> window[8];
  int got = tree.host_tree().RangeScan(data[1234].key, 8, window);
  std::printf("range scan from key %llu: %d pairs, first value %llu\n",
              static_cast<unsigned long long>(data[1234].key), got,
              static_cast<unsigned long long>(window[0].value));

  // 5. Batch update: parallel in host memory, then one I-segment sync.
  auto batch = MakeUpdateBatch<Key64>(data, 50'000, /*insert_fraction=*/0.5,
                                      /*seed=*/9);
  BatchUpdateConfig update_config;
  BatchUpdateStats update_stats =
      RunBatchUpdate(tree, batch, UpdateMethod::kAsyncParallel,
                     update_config);
  std::printf("batch update: %llu applied (%llu structural), I-segment "
              "re-sync %.2f ms\n",
              static_cast<unsigned long long>(update_stats.applied),
              static_cast<unsigned long long>(update_stats.structural),
              update_stats.sync_us / 1e3);

  // The device mirror is consistent again: re-run a pipeline search.
  RunSearchPipeline(tree, queries.data(), 16384, pipeline, &results);
  std::printf("post-update pipeline search OK (%zu results)\n",
              results.size());
  return 0;
}
