// Distribution study: how query skew changes where the HB+-tree spends
// its time. For each of the paper's four distributions (Section 6.3) the
// example reports the CPU-side cache behaviour of the leaf step, the
// GPU-side L2 hit rate of the inner search, and the end-to-end pipeline
// throughput — making the mechanism behind Figure 12 visible.

#include <cstdio>

#include "bench_support/calibrate.h"
#include "core/distributions.h"
#include "core/workload.h"
#include "gpusim/device.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_implicit.h"
#include "sim/platform.h"

using namespace hbtree;

int main() {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  auto data = GenerateDataset<Key64>(4'000'000, /*seed=*/5);

  std::printf("%-10s %10s %12s %12s %12s %10s\n", "dist", "hit rate",
              "leaf q/us", "gpu L2 hit", "dram MB", "MQPS");
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kNormal, Distribution::kGamma,
        Distribution::kZipf}) {
    // Fresh platform per distribution so cache state is comparable.
    gpu::Device device(platform.gpu);
    gpu::TransferEngine transfer(&device, platform.pcie);
    PageRegistry registry;
    HBImplicitTree<Key64>::Config config;
    HBImplicitTree<Key64> tree(config, &registry, &device, &transfer);
    if (!tree.Build(data)) return 1;

    auto queries =
        MakeDistributedQueries<Key64>(1 << 19, distribution, /*seed=*/6);

    // CPU leaf-step profile under this skew.
    auto rates = bench::CalibrateHbCpuRates(tree.host_tree(), queries,
                                            platform, registry);

    // Fraction of queries that actually find a key (skew also changes
    // the hit rate since queries are drawn from the domain, not the set).
    std::size_t found = 0;
    for (std::size_t i = 0; i < 4096; ++i) {
      found += tree.host_tree().Search(queries[i]).found;
    }

    PipelineConfig pipeline;
    const double threads = platform.cpu.threads;
    pipeline.cpu_queries_per_us =
        threads * 1e3 / (threads * 1e3 / rates.leaf_queries_per_us +
                         platform.cpu.hybrid_overhead_ns);
    PipelineStats stats = RunSearchPipeline(tree, queries.data(),
                                            queries.size(), pipeline);
    const double l2_rate =
        static_cast<double>(stats.kernel.l2_bytes) /
        (stats.kernel.l2_bytes + stats.kernel.dram_bytes);
    std::printf("%-10s %9.1f%% %12.1f %11.1f%% %12.1f %10.1f\n",
                DistributionName(distribution), 100.0 * found / 4096,
                rates.leaf_queries_per_us, 100.0 * l2_rate,
                stats.kernel.dram_bytes / 1e6, stats.mqps);
  }
  std::printf(
      "\nSkew concentrates accesses: Zipf keeps the hot leaf lines in the "
      "CPU caches and the hot inner nodes in the GPU L2, lifting both "
      "sides of the pipeline (paper Fig. 12).\n");
  return 0;
}
