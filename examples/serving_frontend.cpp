// Serving front-end demo: a live index service over the regular
// HB+-tree. A handful of client threads issue point lookups and range
// queries while another applies a rolling stream of updates; the
// epoch-swapped snapshot pair (src/serve/snapshot.h) keeps reads
// consistent and non-blocking throughout. Prints the server's stats
// report at the end.

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_support/serve_runner.h"
#include "core/workload.h"
#include "serve/server.h"

using namespace hbtree;

int main() {
  const std::size_t n = 1 << 18;
  const std::uint64_t seed = 42;
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");

  std::printf("building a %zu-key index service...\n", n);
  auto data = GenerateDataset<Key64>(n, seed);
  serve::ServerOptions options =
      bench::CalibratedServerOptions(platform, data, seed + 1,
                                     /*bucket_size=*/4096);
  Status create_status;
  auto server_ptr = serve::Server<Key64>::Create(options, data, &create_status);
  if (server_ptr == nullptr) {
    std::fprintf(stderr, "server creation failed: %s\n",
                 create_status.message().c_str());
    return 1;
  }
  serve::Server<Key64>& server = *server_ptr;

  // One blocking lookup and one range query, served end to end.
  serve::ReadResult<Key64> one = server.SubmitLookup(data[7].key).get();
  std::printf("lookup key %llu -> found=%d value=%llu\n",
              static_cast<unsigned long long>(data[7].key), one.lookup.found,
              static_cast<unsigned long long>(one.lookup.value));
  auto range = server.Range(data[100].key, 8);
  std::printf("range from key %llu -> %zu pairs\n",
              static_cast<unsigned long long>(data[100].key), range.size());

  // Concurrent phase: three lookup clients + one update client.
  auto queries = MakeLookupQueries(data, seed + 2);
  auto updates = MakeUpdateBatch(data, 16 * 1024, 0.8, seed + 3);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<serve::ReadResult<Key64>>> window;
      for (std::size_t i = 0; i < 32 * 1024; ++i) {
        window.push_back(
            server.SubmitLookup(queries[(c + 3 * i) % queries.size()]));
        if (window.size() == 512) {
          for (auto& f : window) f.get();
          window.clear();
        }
      }
      for (auto& f : window) f.get();
    });
  }
  clients.emplace_back([&] {
    std::vector<std::future<serve::UpdateResult>> pending;
    for (const auto& u : updates) pending.push_back(server.SubmitUpdate(u));
    for (auto& f : pending) f.get();
  });
  for (auto& t : clients) t.join();

  std::printf("%s\n", server.Stats().ToString().c_str());
  return 0;
}
