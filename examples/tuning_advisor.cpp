// Tuning advisor: explores how the HB+-tree should be configured for a
// given platform — bucket size, execution strategy, and the (D, R)
// load-balance split discovered by Algorithm 1 — and prints a
// recommendation. Run it per platform:
//
//   $ ./examples/tuning_advisor            # M1 (server + GTX 780)
//   $ ./examples/tuning_advisor m2         # M2 (laptop + GTX 770M)

#include <cstdio>
#include <string>

#include "bench_support/calibrate.h"
#include "core/workload.h"
#include "gpusim/device.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/load_balancer.h"
#include "sim/platform.h"

using namespace hbtree;
using bench::CalibrateHbCpuRates;

int main(int argc, char** argv) {
  sim::PlatformSpec platform =
      sim::PlatformSpec::Parse(argc > 1 ? argv[1] : "m1");
  gpu::Device device(platform.gpu);
  gpu::TransferEngine transfer(&device, platform.pcie);
  PageRegistry registry;

  std::printf("Tuning for %s: %s + %s\n", platform.name.c_str(),
              platform.cpu.name.c_str(), platform.gpu.name.c_str());

  auto data = GenerateDataset<Key64>(4'000'000, /*seed=*/1);
  auto queries = MakeLookupQueries(data, /*seed=*/2);
  queries.resize(1 << 18);

  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &registry, &device, &transfer);
  if (!tree.Build(data)) return 1;

  auto rates = CalibrateHbCpuRates(tree.host_tree(), queries, platform,
                                   registry);
  const double threads = platform.cpu.threads;
  PipelineConfig base;
  base.cpu_queries_per_us =
      threads * 1e3 / (threads * 1e3 / rates.leaf_queries_per_us +
                       platform.cpu.hybrid_overhead_ns);
  base.cpu_descend_us_per_level = rates.descend_us_per_level;
  base.cpu_descend_us_by_depth = rates.descend_us_by_depth;

  // 1. Bucket size: largest throughput subject to a latency budget.
  std::printf("\n-- bucket size sweep (latency budget 300 us) --\n");
  int best_bucket = 16 * 1024;
  double best_mqps = 0;
  for (int bucket : {4096, 8192, 16384, 32768, 65536}) {
    PipelineConfig c = base;
    c.bucket_size = bucket;
    PipelineStats s =
        RunSearchPipeline(tree, queries.data(), queries.size(), c);
    std::printf("  M=%3dK  %6.1f MQPS  latency %7.1f us%s\n",
                bucket / 1024, s.mqps, s.avg_latency_us,
                s.avg_latency_us > 300 ? "  (over budget)" : "");
    if (s.avg_latency_us <= 300 && s.mqps > best_mqps) {
      best_mqps = s.mqps;
      best_bucket = bucket;
    }
  }
  base.bucket_size = best_bucket;

  // 2. Strategy comparison.
  std::printf("\n-- execution strategy --\n");
  for (BucketStrategy strategy :
       {BucketStrategy::kSequential, BucketStrategy::kPipelined,
        BucketStrategy::kDoubleBuffered}) {
    PipelineConfig c = base;
    c.strategy = strategy;
    PipelineStats s =
        RunSearchPipeline(tree, queries.data(), queries.size(), c);
    std::printf("  %-16s %6.1f MQPS\n", BucketStrategyName(strategy),
                s.mqps);
  }

  // 3. Load-balance discovery (Algorithm 1).
  std::printf("\n-- load-balance discovery --\n");
  PipelineStats plain =
      RunSearchPipeline(tree, queries.data(), queries.size(), base);
  LoadBalanceSetting setting = DiscoverLoadBalance(
      tree, queries.data(), std::min<std::size_t>(queries.size(), 32768),
      base);
  PipelineStats balanced = RunSearchPipeline(
      tree, queries.data(), queries.size(), WithLoadBalance(base, setting));
  std::printf("  plain: %.1f MQPS; balanced (D=%d, R=%.2f): %.1f MQPS\n",
              plain.mqps, setting.d, setting.r, balanced.mqps);

  const bool use_lb = balanced.mqps > plain.mqps * 1.02;
  std::printf("\n== recommendation for %s ==\n", platform.name.c_str());
  std::printf("  bucket size      : %dK queries\n", best_bucket / 1024);
  std::printf("  strategy         : double-buffered pipeline\n");
  if (use_lb) {
    std::printf("  load balancing   : ON  (D=%d levels on CPU, R=%.2f)\n",
                setting.d, setting.r);
  } else {
    std::printf("  load balancing   : OFF (GPU fast enough; CPU-bound)\n");
  }
  std::printf("  expected         : %.1f MQPS on the simulated platform\n",
              use_lb ? balanced.mqps : plain.mqps);
  return 0;
}
