// OLAP warehouse scenario — the workload the paper's introduction
// motivates: a lookup-intensive index over a fact table, refreshed by
// periodic bulk loads (near-real-time ETL).
//
// The example runs several "business days": each day executes millions of
// dimension-key lookups through the heterogeneous pipeline, then an
// end-of-day batch of new facts is merged. It contrasts the two HB+-tree
// variants: the implicit tree (rebuild on refresh, fastest lookups) and
// the regular tree (incremental batch updates).

#include <cstdio>
#include <vector>

#include "core/workload.h"
#include "io/tree_io.h"
#include "gpusim/device.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"
#include "sim/platform.h"

using namespace hbtree;

namespace {

constexpr int kDays = 3;
constexpr std::size_t kInitialFacts = 2'000'000;
constexpr std::size_t kQueriesPerDay = 500'000;
constexpr std::size_t kNewFactsPerDay = 100'000;

/// Applies a day's batch to the sorted fact set (for the implicit tree's
/// rebuild path).
std::vector<KeyValue<Key64>> MergeBatch(
    const std::vector<KeyValue<Key64>>& facts,
    const std::vector<UpdateQuery<Key64>>& batch) {
  std::vector<KeyValue<Key64>> merged = facts;
  for (const auto& update : batch) {
    auto it = std::lower_bound(
        merged.begin(), merged.end(), update.pair.key,
        [](const KeyValue<Key64>& kv, Key64 k) { return kv.key < k; });
    if (update.kind == UpdateQuery<Key64>::Kind::kInsert) {
      if (it == merged.end() || it->key != update.pair.key) {
        merged.insert(it, update.pair);
      }
    } else if (it != merged.end() && it->key == update.pair.key) {
      merged.erase(it);
    }
  }
  return merged;
}

}  // namespace

int main() {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  gpu::Device device(platform.gpu);
  gpu::TransferEngine transfer(&device, platform.pcie);
  PageRegistry registry;

  auto facts = GenerateDataset<Key64>(kInitialFacts, /*seed=*/2026);

  // Regular HB+-tree: incremental refresh.
  HBRegularTree<Key64>::Config regular_config;
  regular_config.tree.leaf_fill = 0.8;
  HBRegularTree<Key64> regular(regular_config, &registry, &device,
                               &transfer);
  if (!regular.Build(facts)) return 1;

  // Implicit HB+-tree: rebuild on refresh.
  PageRegistry implicit_registry;
  HBImplicitTree<Key64>::Config implicit_config;
  HBImplicitTree<Key64> implicit(implicit_config, &implicit_registry,
                                 &device, &transfer);
  if (!implicit.Build(facts)) return 1;

  PipelineConfig pipeline;
  pipeline.cpu_queries_per_us = 220;

  for (int day = 1; day <= kDays; ++day) {
    std::printf("=== day %d: %zu facts ===\n", day, facts.size());

    // Daytime: analysts hammer the index with point lookups.
    auto queries = MakeLookupQueries(facts, /*seed=*/100 + day);
    queries.resize(std::min(kQueriesPerDay, queries.size()));
    std::vector<LookupResult<Key64>> results;

    PipelineStats implicit_stats = RunSearchPipeline(
        implicit, queries.data(), queries.size(), pipeline, &results);
    std::size_t misses = 0;
    for (const auto& r : results) misses += !r.found;
    PipelineStats regular_stats = RunSearchPipeline(
        regular, queries.data(), queries.size(), pipeline);
    std::printf("  lookups: implicit %.0f MQPS, regular %.0f MQPS "
                "(simulated), %zu misses\n",
                implicit_stats.mqps, regular_stats.mqps, misses);

    // Nighttime ETL: merge the day's new facts.
    auto batch = MakeUpdateBatch<Key64>(facts, kNewFactsPerDay,
                                        /*insert_fraction=*/0.9,
                                        /*seed=*/200 + day);
    BatchUpdateConfig update_config;
    BatchUpdateStats update_stats = RunBatchUpdate(
        regular, batch, UpdateMethod::kAsyncParallel, update_config);

    facts = MergeBatch(facts, batch);
    implicit.Build(facts);  // rebuild + re-upload
    std::printf("  refresh: regular batch %.1f ms (update %.1f + sync "
                "%.1f), implicit rebuilt (%zu facts)\n",
                update_stats.total_us / 1e3, update_stats.update_us / 1e3,
                update_stats.sync_us / 1e3, facts.size());

    // Sanity: both trees agree with the merged fact set.
    for (std::size_t i = 0; i < facts.size(); i += facts.size() / 7) {
      auto a = implicit.host_tree().Search(facts[i].key);
      auto b = regular.host_tree().Search(facts[i].key);
      if (!a.found || !b.found || a.value != facts[i].value ||
          b.value != facts[i].value) {
        std::fprintf(stderr, "inconsistency at key index %zu!\n", i);
        return 1;
      }
    }
  }
  // End-of-week snapshot: persist the built index so the next restart
  // skips the rebuild, then prove the snapshot loads intact.
  const std::string snapshot = "/tmp/hbtree_warehouse.hbt";
  Status saved = SaveTreeFile(implicit.host_tree(), snapshot);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n", saved.message().c_str());
    return 1;
  }
  PageRegistry reload_registry;
  ImplicitBTree<Key64>::Config reload_config;
  reload_config.hybrid_layout = true;
  ImplicitBTree<Key64> reloaded(reload_config, &reload_registry);
  Status loaded = LoadTreeFile(&reloaded, snapshot);
  if (!loaded.ok() || reloaded.size() != facts.size() ||
      !reloaded.Search(facts[42].key).found) {
    std::fprintf(stderr, "snapshot reload failed\n");
    return 1;
  }
  std::remove(snapshot.c_str());
  std::printf("snapshot: %zu facts persisted and reloaded intact\n",
              reloaded.size());

  std::printf("done: %d days processed, trees consistent.\n", kDays);
  return 0;
}
